(** The fuzzing campaign driver behind [macs_cli fuzz].

    Deterministic: case [i] of seed [s] draws from
    [Random.State.make \[| s; i |\]], so any case replays in isolation
    and two runs with the same seed and count explore the identical
    sequence regardless of how earlier cases fail or how long they take.
    The case mix is roughly 20% assembly round-trip programs, 20%
    loop-carried scalar kernels, 60% vectorizable kernels; kernel cases
    run the full {!Oracle_stack} (one sampled fault plan per case,
    rotating through the configured plans), and every failure is shrunk
    ({!Shrink}) under the cheapest faithful predicate before being
    reported and, when a corpus path is configured, persisted
    ({!Corpus}).

    Two run-level guards: a whole-campaign wall-clock budget (cases stop
    being generated once exhausted — the summary says how many ran), and
    the per-simulation watchdog budget threaded into every
    {!Convex_vpsim.Measure} call.  The probe-based
    faulted-never-faster oracle runs once per fault plan per campaign
    (general kernels are not monotone under faults, the calibrated probe
    is). *)

type config = {
  seed : int;
  count : int;
  machine : Convex_machine.Machine.t;
  machine_name : string;  (** {!Convex_machine.Machine.of_name} spelling *)
  fault_plans : Convex_fault.Fault.t list;
  budget : Convex_harness.Budget.t;  (** per-simulation watchdog *)
  max_wall_s : float option;  (** whole-campaign wall-clock cap *)
  corpus : string option;  (** append shrunk counterexamples here *)
  sim : bool;  (** false = functional stages only *)
  jobs : int;
      (** worker domains ({!Convex_exec.Executor}); 1 = the historical
          sequential behaviour, byte-identical corpus included *)
  cache : string option;
      (** content-addressed result cache directory
          ({!Convex_cache.Cache}): case outcomes are memoised under a
          key of (seed, index, machine, plans, budget, sim), and a warm
          re-run replays them without touching the oracle stack — with
          byte-identical corpus and summary, hit counters excepted *)
  fidelity : Convex_vpsim.Fastpath.fidelity;
      (** stepper tier for the sim/fault-sim rungs; outcomes are
          bit-identical across tiers (the per-case fidelity-diff rung
          proves it), so this is a speed knob, excluded from the cache
          key *)
}

val default_config : config
(** Seed 42, 500 cases, healthy C-240, the stock fault presets, a
    10-second-per-simulation watchdog, no campaign cap, no corpus,
    simulation on, one worker, tiered fidelity. *)

type violation = {
  case_index : int;
  case_label : string;
      (** ["vector"], ["scalar"], ["asm"] — or ["quarantined"] for a
          case whose exception escaped the oracle stack and was poisoned
          by the executor *)
  check : string;  (** failing check id *)
  detail : string;
  kind : Corpus.kind;
  payload : string;  (** shrunk {!Codec} text or assembly listing *)
  shrink_steps : int;
  shrink_tried : int;
}

type summary = {
  cases_requested : int;
  cases_run : int;
  by_label : (string * int) list;
  checks_passed : int;
  checks_skipped : int;
  violations : violation list;
  probe_violations : (string * string) list;
      (** (fault plan, detail) from faulted-never-faster *)
  wall_s : float;
  stopped_early : bool;
  cache_counters : Convex_cache.Cache.counters option;
      (** per-run hit/miss/store/quarantine counts when a cache was
          configured; deliberately absent from {!render_summary} so
          cold and warm renders stay byte-identical *)
}

val clean : summary -> bool
(** No violations of either kind. *)

val run : ?progress:(int -> unit) -> config -> summary
(** [progress] is called with each case index before the case runs. *)

val render_summary : summary -> string
(** The fuzz report: a campaign table plus one block per violation. *)
