(** Greedy deterministic shrinking of failing fuzz cases.

    Given a predicate ("does the check that failed on the original still
    fail?"), repeatedly tries simplifying rewrites in a fixed order —
    aggressive first (keep one statement, drop a statement, collapse to
    one segment), then fine-grained (replace an expression node by one
    of its children, unit strides, zero offsets, unit scalar values,
    shorter segments, a trivial accumulator, pruned declarations) — and
    accepts the first rewrite that still validates and still fails.
    Fixpoint: stops when no rewrite is accepted (or after [max_steps]
    accepted steps, a safety bound).

    Everything is deterministic: same kernel + same predicate → same
    shrunk kernel, which is what makes corpus entries reproducible. *)

type 'a result = {
  value : 'a;  (** the shrunk case *)
  steps : int;  (** rewrites accepted *)
  tried : int;  (** candidates evaluated (predicate calls) *)
}

(** What the greedy strategy needs from a shrinkable case type.  The
    strategy itself is case-agnostic; {!kernel} and {!program} below are
    instances, and the chaos campaign instantiates it over fault plans. *)
module type Case = sig
  type t

  val equal : t -> t -> bool
  (** Guards against no-op rewrites: a candidate equal to the current
      case is skipped without consulting the predicate. *)

  val valid : t -> bool
  (** Candidates failing validity are discarded before the predicate
      runs, so the predicate only ever sees well-formed cases. *)

  val candidates : t -> t list
  (** Simplifying rewrites of a case, aggressive first; the first valid
      candidate that still fails is accepted and the enumeration
      restarts from it. *)
end

module Make (C : Case) : sig
  val shrink :
    ?max_steps:int ->
    ?jobs:int ->
    still_fails:(C.t -> bool) ->
    C.t ->
    C.t result
  (** [max_steps] (default 200) bounds accepted rewrites; the run is a
      fixpoint otherwise — it stops when no valid candidate still
      fails.  [jobs] (default 1) evaluates candidates in
      executor-parallel chunks while accepting the lowest-indexed
      failing candidate and counting [tried] exactly as the sequential
      scan would, so the result — value, steps and tried — is identical
      at every [jobs]. *)
end

val kernel :
  ?max_steps:int ->
  ?jobs:int ->
  still_fails:(Lfk.Kernel.t -> bool) ->
  Lfk.Kernel.t ->
  Lfk.Kernel.t result
(** [max_steps] defaults to 200.  Candidates failing
    {!Lfk.Kernel.validate} are discarded before the predicate runs, so
    the predicate only ever sees well-formed kernels. *)

val program :
  ?max_steps:int ->
  ?jobs:int ->
  still_fails:(Convex_isa.Program.t -> bool) ->
  Convex_isa.Program.t ->
  Convex_isa.Program.t result
(** Instruction-list shrinking for assembly round-trip failures:
    keep-one and drop-one rewrites over the body. *)
