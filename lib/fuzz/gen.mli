open Convex_isa

(** Seedable random generators: instructions and bodies for simulator
    properties, and well-formed loop-IR kernels for the differential
    fuzzer.

    The instruction-level generators were born in the test suite (shared
    QCheck properties over the simulator and the chime model) and keep
    their historical shapes; the kernel generators are fuzzer-grade:
    everything they produce passes {!Lfk.Kernel.validate}, stays in
    bounds on the sized arrays, and respects the compiler's vector-value
    constraints, so every oracle-stack failure is a finding rather than a
    generator artifact.

    Adversarial choices are deliberate: strides crossing the eight-way
    bank interleave ({!adversarial_strides}), segment lengths straddling
    the 128-element strip-mine edges ({!edge_lengths}), gathers and
    scatters through IDX-prefixed index arrays, reductions, and
    element-wise selects. *)

(** {1 Instruction-level generators (shared with the test suites)} *)

val vreg_gen : Reg.v QCheck.Gen.t
val sreg_gen : Reg.s QCheck.Gen.t
val mem_gen : Instr.mem QCheck.Gen.t
val vsrc_gen : Instr.vsrc QCheck.Gen.t
val vbinop_gen : Instr.vbinop QCheck.Gen.t
val vector_instr_gen : Instr.t QCheck.Gen.t
val scalar_instr_gen : Instr.t QCheck.Gen.t
val instr_gen : Instr.t QCheck.Gen.t
val body_gen : Instr.t list QCheck.Gen.t
val vector_body_gen : Instr.t list QCheck.Gen.t
val instr_arbitrary : Instr.t QCheck.arbitrary
val body_arbitrary : Instr.t list QCheck.arbitrary
val vector_body_arbitrary : Instr.t list QCheck.arbitrary

(** {1 Simple kernel generator (compiler round-trip tests)} *)

val expr_gen : depth:int -> Lfk.Ir.expr QCheck.Gen.t
val has_load : Lfk.Ir.expr -> bool
val kernel_gen : Lfk.Kernel.t QCheck.Gen.t
val kernel_arbitrary : Lfk.Kernel.t QCheck.arbitrary

(** {1 Fuzzer-grade kernel generators} *)

val adversarial_strides : int list
(** Stride pool: unit, small primes, and powers of two up to 32 — the
    strides that alias memory banks and defeat tailgating. *)

val edge_lengths : int list
(** Segment-length pool clustered around the strip-mine boundaries
    (1..4, 31..33, 63..65, 127..130, 255..257) plus a long tail. *)

type profile =
  | Vector_profile
      (** Vectorizable kernels: disjoint load/store pools, gathers,
          scatters, reductions, selects. *)
  | Scalar_profile
      (** Loop-carried kernels ([REC(k+1) := f(REC(k), ...)]) that the
          vectorizer must reject, compiled to C-240 scalar mode; only
          scalar-lowerable constructs appear. *)

val fuzz_kernel_gen : profile -> Lfk.Kernel.t QCheck.Gen.t
(** Kernels valid by construction: array sizes are computed from the
    generated references and segments ({!min_array_sizes}), IDX-indexed
    arrays are sized for the full [0, 1024) index range, and every
    compiler vector-value constraint is respected. *)

val fuzz_kernel_arbitrary : profile -> Lfk.Kernel.t QCheck.arbitrary

val min_array_sizes : Lfk.Kernel.t -> (string * int) list
(** Smallest in-bounds size for every array the kernel references, from
    the affine extents over its segments; arrays reached through gathers
    or scatters are sized for the whole IDX value range.  Used by the
    generator to size arrays and by the shrinker to shrink them. *)

(** {1 Assembly round-trip fuzzing} *)

val adversarial_sop_names : string list
(** [sop] names that stress the listing grammar: spaces, commas,
    semicolons, percent signs, and the empty name. *)

val program_gen : Program.t QCheck.Gen.t
(** Random programs whose [sop] names draw from
    {!adversarial_sop_names} — the printer/parser round-trip fuzz
    input. *)
