(** Textual kernel serialisation for the fuzz corpus.

    A compact s-expression syntax covering every {!Lfk.Kernel.t} field,
    so shrunk counterexamples persist and replay byte-for-byte: scalar
    values print as OCaml hexadecimal float literals ([%h]), making the
    round trip exact.

    [of_string (to_string k) = Ok k] for every kernel (structural
    equality). *)

val to_string : Lfk.Kernel.t -> string

val of_string : string -> (Lfk.Kernel.t, string) result
(** [Error] carries a human-readable position-free message. *)
