module Journal = Macs_util.Journal
module Machine = Convex_machine.Machine

type kind = Kernel_case | Asm_case

type expect = Clean | Violation of string

type entry = {
  kind : kind;
  machine : string;
  seed : int;
  expect : expect;
  payload : string;
}

let format = "macs-fuzz-corpus"

let record_of_entry (e : entry) =
  {
    Journal.tag = "case";
    fields =
      [
        ("kind", match e.kind with Kernel_case -> "kernel" | Asm_case -> "asm");
        ("machine", e.machine);
        ("seed", Journal.put_int e.seed);
        ( "expect",
          match e.expect with Clean -> "clean" | Violation _ -> "violation" );
        ("check", match e.expect with Clean -> "" | Violation c -> c);
        ("payload", e.payload);
      ];
  }

let entry_of_record (r : Journal.record) =
  let ( let* ) = Result.bind in
  if r.Journal.tag <> "case" then
    Error (Printf.sprintf "unexpected record tag %S" r.Journal.tag)
  else
    let* kind_s = Journal.field_err r "kind" in
    let* kind =
      match kind_s with
      | "kernel" -> Ok Kernel_case
      | "asm" -> Ok Asm_case
      | s -> Error (Printf.sprintf "unknown case kind %S" s)
    in
    let* machine = Journal.field_err r "machine" in
    let* seed_s = Journal.field_err r "seed" in
    let* seed =
      match Journal.get_int seed_s with
      | Some n -> Ok n
      | None -> Error "seed is not an integer"
    in
    let* expect_s = Journal.field_err r "expect" in
    let* expect =
      match expect_s with
      | "clean" -> Ok Clean
      | "violation" -> (
          match Journal.field r "check" with
          | Some c when c <> "" -> Ok (Violation c)
          | _ -> Error "violation entry is missing its check id")
      | s -> Error (Printf.sprintf "unknown expectation %S" s)
    in
    let* payload = Journal.field_err r "payload" in
    Ok { kind; machine; seed; expect; payload }

let create ~path = Journal.create ~path ~format []

let append ~path entry =
  if Sys.file_exists path then (
    (match Journal.repair ~path ~format with
    | Ok () -> ()
    | Error msg ->
        Macs_util.Macs_error.raise_error
          (Macs_util.Macs_error.parse_failure ~site:"Corpus.append" msg));
    Journal.append ~path (record_of_entry entry))
  else Journal.create ~path ~format [ record_of_entry entry ]

let load ~path =
  match Journal.load ~path ~format with
  | Error _ as e -> e
  | Ok records ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | r :: rest -> (
            match entry_of_record r with
            | Ok e -> go (e :: acc) rest
            | Error _ as err -> err)
      in
      go [] records

(* ---- replay ---- *)

type replay = { entry : entry; ok : bool; detail : string }

let check_needs_sim id =
  let prefixed p =
    String.length id >= String.length p && String.sub id 0 (String.length p) = p
  in
  id = "sim" || prefixed "oracle:" || prefixed "fault-sim:"

let describe_failures report =
  String.concat "; "
    (List.map
       (fun (c : Oracle_stack.check) ->
         match c.outcome with
         | Oracle_stack.Fail d -> c.id ^ ": " ^ d
         | _ -> c.id)
       (Oracle_stack.failures report))

let replay_kernel ~sim (e : entry) =
  match Codec.of_string e.payload with
  | Error msg -> { entry = e; ok = false; detail = "payload: " ^ msg }
  | Ok k -> (
      match Machine.of_name e.machine with
      | Error msg -> { entry = e; ok = false; detail = msg }
      | Ok machine -> (
          let sim =
            match sim with
            | Some s -> s
            | None -> (
                match e.expect with
                | Clean -> true
                | Violation id -> check_needs_sim id)
          in
          let report = Oracle_stack.run ~machine ~sim k in
          match e.expect with
          | Violation id ->
              if Oracle_stack.fails report ~id then
                { entry = e; ok = true;
                  detail = Printf.sprintf "%s still fails, as recorded" id }
              else
                { entry = e; ok = false;
                  detail =
                    Printf.sprintf
                      "%s no longer fails — fixed? retire or flip the entry \
                       to expect=clean"
                      id }
          | Clean -> (
              match Oracle_stack.failures report with
              | [] -> { entry = e; ok = true; detail = "all checks pass" }
              | _ ->
                  { entry = e; ok = false;
                    detail = "regressed: " ^ describe_failures report })))

let replay_asm (e : entry) =
  match Convex_isa.Asm.parse_program e.payload with
  | Error msg -> (
      match e.expect with
      | Violation _ ->
          { entry = e; ok = true; detail = "listing still unparseable: " ^ msg }
      | Clean ->
          { entry = e; ok = false; detail = "listing does not parse: " ^ msg })
  | Ok p -> (
      let check = Oracle_stack.check_program p in
      let round_trip_ok =
        match check.Oracle_stack.outcome with
        | Oracle_stack.Pass -> true
        | _ -> false
      in
      match e.expect with
      | Clean ->
          if round_trip_ok then
            { entry = e; ok = true; detail = "round trip holds" }
          else { entry = e; ok = false; detail = "round trip regressed" }
      | Violation _ ->
          if round_trip_ok then
            { entry = e; ok = false;
              detail = "round trip no longer fails — retire or flip to clean" }
          else { entry = e; ok = true; detail = "round trip still fails" })

let replay_entry ?sim (e : entry) =
  match e.kind with
  | Kernel_case -> replay_kernel ~sim e
  | Asm_case -> replay_asm e

let replay ?sim ~path () =
  match load ~path with
  | Error _ as e -> e
  | Ok entries -> Ok (List.map (replay_entry ?sim) entries)
