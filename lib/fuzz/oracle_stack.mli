(** The differential oracle stack: every cross-check one generated kernel
    is subjected to.

    Stage by stage (each stage a named {!check} with a stable id, so the
    shrinker can ask "does {e this} check still fail?"):

    - ["compile:<opt>"] — the kernel compiles at every optimization
      level.  {!Fcc.Compiler.Register_pressure} is a {e skip} (the
      generated expression legitimately needs more registers than the
      C-240 has); any other exception is a failure.
    - ["diff:<opt>"] — at every {e functional} level, the compiled
      program run under {!Convex_vpsim.Interp} must agree bit-for-bit
      with the direct IR evaluator ({!Eval}) on every declared array.
      Both runs faulting (identically typed) also counts as agreement.
      Scalar-mode kernels diff once (the scalar lowerer ignores the
      level).
    - ["asm-roundtrip"] — the compiled listing reparses to the identical
      program.
    - ["sim"] — the healthy simulator completes (a budget cancellation
      is a skip; a livelock on a healthy machine is a failure).
    - ["oracle:<invariant>"] — the measured time respects the MACS
      hierarchy ({!Macs.Oracle.check_row}: [M <= MA <= MAC <= MACS <=
      measured], or [scalar-bound <= measured] in scalar mode) and
      schedule monotonicity (["oracle:opt-monotonicity"]).
    - ["fault-sim:<plan>"] — under each sampled fault plan the simulator
      either completes or degrades to a {e typed} error; an escaping
      exception is a failure.  (Faulted-never-faster is checked once per
      run on the monotone probe — see {!Driver} — because general
      kernels are not monotone under faults.)
    - ["fidelity-diff"] / ["fidelity-diff:<plan>"] — the tiered stepper
      ({!Convex_vpsim.Fastpath.Tiered}) is bit-identical to pure cycle
      stepping on the same job: total cycles, every stall counter,
      per-pipe busy time, the full trace event list and the word-level
      access log are compared bitwise (floats by their IEEE bits), with a
      deterministic guard and no watchdog.  When both tiers fail, even
      the rendered diagnostic must match.  This rung is the empirical
      proof obligation behind the fast path's "never changes the
      answer" claim. *)

type outcome = Pass | Skip of string | Fail of string

type check = { id : string; outcome : outcome }

type report = {
  kernel : Lfk.Kernel.t;
  mode : Convex_vpsim.Job.mode option;
      (** compilation mode at v61, when it compiled *)
  cpl : float option;  (** healthy measured CPL, when simulated *)
  checks : check list;
}

val failures : report -> check list
val fails : report -> id:string -> bool

val run :
  ?machine:Convex_machine.Machine.t ->
  ?sim:bool ->
  ?fault_plans:Convex_fault.Fault.t list ->
  ?budget:Convex_harness.Budget.t ->
  ?fidelity:Convex_vpsim.Fastpath.fidelity ->
  Lfk.Kernel.t ->
  report
(** Run the whole stack.  [machine] defaults to the healthy C-240;
    [sim:false] stops after the functional stages (compile, diff,
    round-trip) — the cheap mode test properties use.  [budget] caps
    each simulation through a fresh {!Convex_harness.Budget.watchdog}.
    [fidelity] selects the tier for the ["sim"]/["fault-sim:*"] rungs
    (default cycle); the ["fidelity-diff"] rungs always run both tiers
    regardless. *)

val fidelity_diff_check :
  machine:Convex_machine.Machine.t ->
  faults:Convex_fault.Fault.t ->
  Fcc.Compiler.t ->
  check
(** The cycle-vs-tiered bit-identity rung alone, on a compiled kernel. *)

val check_program : Convex_isa.Program.t -> check
(** The assembly round-trip check alone, on an arbitrary program — the
    printer/parser fuzz entry. *)
