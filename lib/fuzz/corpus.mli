(** The persisted fuzz corpus: every interesting case the fuzzer ever
    found, replayed forever.

    A corpus is a {!Macs_util.Journal} file (format
    ["macs-fuzz-corpus"]), so writes are crash-safe (a torn tail from a
    killed fuzzer is repaired, never corrupting earlier entries) and
    appends are atomic per entry.  Each entry records what was being
    fuzzed ([kind]), on which machine preset, from which seed, the
    payload (a {!Codec} kernel or an assembly listing), and the
    expectation:

    - [expect = Violation check]: the case failed check [check] when it
      was committed; replay passes iff the check {e still} fails
      (regressions that silently fix themselves are suspicious too —
      the entry is updated or retired deliberately, not by accident);
    - [expect = Clean]: the case once failed and was then fixed; replay
      passes iff every check passes.

    [dune runtest] replays the committed corpus through
    {!Test_fuzz.corpus_replay}; [macs_cli fuzz --corpus] appends new
    shrunk counterexamples. *)

type kind = Kernel_case | Asm_case

type expect = Clean | Violation of string  (** failing check id *)

type entry = {
  kind : kind;
  machine : string;  (** {!Convex_machine.Machine.of_name} spelling *)
  seed : int;  (** fuzzer seed that produced the case *)
  expect : expect;
  payload : string;  (** {!Codec} text or assembly listing *)
}

val format : string
(** The journal format tag, ["macs-fuzz-corpus"]. *)

val create : path:string -> unit
(** Write an empty corpus (header only). *)

val append : path:string -> entry -> unit
(** Append one entry; creates the corpus (with header) if [path] does
    not exist, repairs a torn tail if it does. *)

val load : path:string -> (entry list, string) result

val check_needs_sim : string -> bool
(** Whether a check id can only be evaluated with the simulator running
    (["sim"], ["oracle:*"], ["fault-sim:*"]) — used to pick the cheapest
    faithful replay and shrink predicate. *)

(** {1 Replay} *)

type replay = {
  entry : entry;
  ok : bool;
  detail : string;  (** what happened, for the failure message *)
}

val replay_entry :
  ?sim:bool -> entry -> replay
(** Re-run one entry's oracle stack on its recorded machine and compare
    against its expectation.  [sim] defaults to [true]; kernels whose
    expectation concerns only functional checks replay with [sim:false]
    cheaply. *)

val replay : ?sim:bool -> path:string -> unit -> (replay list, string) result
(** Load and replay a whole corpus file. *)
