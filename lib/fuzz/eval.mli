(** Direct loop-IR evaluator: the differential oracle's second opinion.

    Executes a kernel straight from its IR — no lowering, no register
    allocation, no scheduling — against a {!Convex_vpsim.Store.t},
    mirroring the machine's observable execution order exactly:
    segments in order, each segment strip-mined into chunks of [max_vl]
    elements (one element in scalar mode), statements in order over the
    whole strip, store and scatter value vectors computed in full before
    any element is written, reductions summed ascending per strip into a
    partial that is then folded into the accumulator, and the
    accumulator protocol (init in the segment prologue, scale/store in
    the epilogue) run per segment.

    The mirror extends to two bit-level quirks of the compiled code:
    a [Zero] accumulator init is evaluated as [acc -. acc] (the compiler
    zeroes the register by subtracting it from itself, which is NaN if a
    previous segment left it infinite), and in scalar mode the evaluator
    refuses [Neg] outright (the scalar lowerer's zero-materialisation
    trick depends on stale register contents no IR-level evaluator can
    see).

    Agreement with {!Convex_vpsim.Interp} on the compiled program is
    therefore exact — bit-for-bit — for kernels whose loads and stores
    touch disjoint arrays (the fuzzer's vector profile) or whose
    dependence distance matches element-order execution (the scalar
    profile's recurrences). *)

val run :
  ?max_vl:int ->
  mode:Convex_vpsim.Job.mode ->
  store:Convex_vpsim.Store.t ->
  Lfk.Kernel.t ->
  (unit, Macs_util.Macs_error.t) result
(** Evaluate the kernel, mutating [store] in place.  [max_vl] defaults
    to 128, the C-240 vector length (and {!Convex_vpsim.Interp}'s
    default).  Errors are typed: out-of-bounds references, unknown
    arrays or scalars, and scalar-mode [Neg] report
    [Macs_error.Interp_fault] with site ["Eval.run"]. *)
