open Convex_isa
module Machine = Convex_machine.Machine
module Fault = Convex_fault.Fault
module Budget = Convex_harness.Budget
module Interp = Convex_vpsim.Interp
module Job = Convex_vpsim.Job
module Measure = Convex_vpsim.Measure
module Sim = Convex_vpsim.Sim
module Fastpath = Convex_vpsim.Fastpath
module Macs_error = Macs_util.Macs_error

type outcome = Pass | Skip of string | Fail of string

type check = { id : string; outcome : outcome }

type report = {
  kernel : Lfk.Kernel.t;
  mode : Job.mode option;
  cpl : float option;
  checks : check list;
}

let failures r =
  List.filter (fun c -> match c.outcome with Fail _ -> true | _ -> false)
    r.checks

let fails r ~id =
  List.exists
    (fun c -> c.id = id && match c.outcome with Fail _ -> true | _ -> false)
    r.checks

(* ---- assembly round trip ---- *)

let check_program (p : Program.t) =
  let id = "asm-roundtrip" in
  let listing = Asm.print_program p in
  match Asm.parse_program listing with
  | Error msg ->
      { id; outcome = Fail (Printf.sprintf "listing does not reparse: %s" msg) }
  | Ok p' ->
      if Program.equal p p' then { id; outcome = Pass }
      else
        { id;
          outcome =
            Fail "reparsed program differs from the printed one" }

(* ---- bitwise store comparison ---- *)

let bits = Int64.bits_of_float

let compare_stores (k : Lfk.Kernel.t) a b =
  let diff = ref None in
  List.iter
    (fun (name, _) ->
      if !diff = None then
        let xa = Convex_vpsim.Store.get a name in
        let xb = Convex_vpsim.Store.get b name in
        if Array.length xa <> Array.length xb then
          diff := Some (Printf.sprintf "%s: lengths differ" name)
        else
          Array.iteri
            (fun i va ->
              if !diff = None && bits va <> bits xb.(i) then
                diff :=
                  Some
                    (Printf.sprintf "%s[%d]: interp %h, eval %h" name i
                       xb.(i) va))
            xa)
    k.arrays;
  !diff

(* ---- the stack ---- *)

let opt_levels =
  [ Fcc.Opt_level.v61; Fcc.Opt_level.ideal; Fcc.Opt_level.loads_first;
    Fcc.Opt_level.packed ]

let compile_check opt k =
  let id = Printf.sprintf "compile:%s" (Fcc.Opt_level.name opt) in
  match Fcc.Compiler.compile ~opt k with
  | c -> (Some c, { id; outcome = Pass })
  | exception Fcc.Compiler.Register_pressure msg ->
      (None, { id; outcome = Skip (Printf.sprintf "register pressure: %s" msg) })
  | exception Invalid_argument msg ->
      (None, { id; outcome = Fail (Printf.sprintf "Invalid_argument: %s" msg) })
  | exception e ->
      (None, { id; outcome = Fail (Printexc.to_string e) })

let diff_check opt (c : Fcc.Compiler.t) =
  let id = Printf.sprintf "diff:%s" (Fcc.Opt_level.name opt) in
  match
    let store_i = Fcc.Compiler.initial_store c in
    let interp_r =
      Interp.run ~sregs:(Fcc.Compiler.initial_sregs c) ~store:store_i c.job
    in
    let store_e = Lfk.Data.store_of c.kernel in
    let eval_r = Eval.run ~mode:c.mode ~store:store_e c.kernel in
    (interp_r, eval_r, store_i, store_e)
  with
  | Ok _, Ok (), store_i, store_e -> (
      match compare_stores c.kernel store_i store_e with
      | None -> { id; outcome = Pass }
      | Some d -> { id; outcome = Fail ("stores diverge: " ^ d) })
  | Error _, Error _, _, _ ->
      (* both executions fault — agreement of a different kind *)
      { id; outcome = Pass }
  | Error e, Ok (), _, _ ->
      { id;
        outcome =
          Fail ("interp faults, eval does not: " ^ Macs_error.to_string e) }
  | Ok _, Error e, _, _ ->
      { id;
        outcome =
          Fail ("eval faults, interp does not: " ^ Macs_error.to_string e) }
  | exception e ->
      { id; outcome = Fail ("exception: " ^ Printexc.to_string e) }

let sim_check ~machine ~budget ~faults ?fidelity (c : Fcc.Compiler.t) =
  let plan_name = Fault.(if is_none faults then None else Some faults.name) in
  let id =
    match plan_name with
    | None -> "sim"
    | Some p -> Printf.sprintf "fault-sim:%s" p
  in
  let watchdog = Budget.watchdog ~site:("fuzz." ^ id) budget in
  match
    Measure.run ~machine ~faults ?watchdog ?fidelity
      ~flops_per_iteration:(max 1 c.flops_per_iteration)
      c.job
  with
  | Ok m -> (Some m, { id; outcome = Pass })
  | Error (Macs_error.Budget_exceeded _ as e) ->
      (None, { id; outcome = Skip (Macs_error.to_string e) })
  | Error _ when plan_name <> None ->
      (* under injected faults any typed degradation is a valid outcome *)
      (None, { id; outcome = Pass })
  | Error e -> (None, { id; outcome = Fail (Macs_error.to_string e) })
  | exception e ->
      (None, { id; outcome = Fail ("exception: " ^ Printexc.to_string e) })

(* ---- cycle vs tiered bit-identity ---- *)

let same_float a b = Int64.equal (bits a) (bits b)

let same_stats (a : Sim.stats) (b : Sim.stats) =
  same_float a.cycles b.cycles
  && a.elements = b.elements
  && a.instructions = b.instructions
  && a.strips = b.strips
  && a.mem_accesses = b.mem_accesses
  && a.bank_conflict_stalls = b.bank_conflict_stalls
  && a.refresh_stalls = b.refresh_stalls
  && a.port_stalls = b.port_stalls
  && a.fault_stalls = b.fault_stalls
  && List.length a.pipe_busy = List.length b.pipe_busy
  && List.for_all2
       (fun (na, xa) (nb, xb) -> String.equal na nb && same_float xa xb)
       a.pipe_busy b.pipe_busy

let same_event (a : Sim.event) (b : Sim.event) =
  a.instr = b.instr && a.strip = b.strip
  && same_float a.issue b.issue
  && same_float a.start b.start
  && same_float a.first_result b.first_result
  && same_float a.completion b.completion

let fidelity_diff_check ~machine ~faults (c : Fcc.Compiler.t) =
  let plan_name = Fault.(if is_none faults then None else Some faults.name) in
  let id =
    match plan_name with
    | None -> "fidelity-diff"
    | Some p -> Printf.sprintf "fidelity-diff:%s" p
  in
  (* deterministic guard, no watchdog: both runs must step (or stall out)
     identically, so even the failure cycle in the diagnostic is part of
     the contract being diffed *)
  let guard = if plan_name = None then Sim.default_guard else 50_000 in
  let once fidelity =
    let log = ref [] in
    let r = Sim.run ~machine ~faults ~guard ~trace:true ~access_log:log ~fidelity c.job in
    (r, !log)
  in
  match (once Fastpath.Cycle, once Fastpath.Tiered) with
  | (Ok rc, lc), (Ok rt, lt) ->
      if not (same_stats rc.Sim.stats rt.Sim.stats) then
        { id; outcome = Fail "stats diverge between cycle and tiered" }
      else if
        List.length rc.Sim.events <> List.length rt.Sim.events
        || not (List.for_all2 same_event rc.Sim.events rt.Sim.events)
      then { id; outcome = Fail "trace events diverge between cycle and tiered" }
      else if lc <> lt then
        { id; outcome = Fail "access logs diverge between cycle and tiered" }
      else { id; outcome = Pass }
  | (Error ec, _), (Error et, _) ->
      if String.equal (Macs_error.to_string ec) (Macs_error.to_string et) then
        { id; outcome = Pass }
      else
        { id;
          outcome =
            Fail
              (Printf.sprintf "diagnostics diverge: cycle %s, tiered %s"
                 (Macs_error.to_string ec) (Macs_error.to_string et)) }
  | (Error ec, _), (Ok _, _) ->
      { id;
        outcome =
          Fail ("cycle fails, tiered completes: " ^ Macs_error.to_string ec) }
  | (Ok _, _), (Error et, _) ->
      { id;
        outcome =
          Fail ("tiered fails, cycle completes: " ^ Macs_error.to_string et) }
  | exception e ->
      { id; outcome = Fail ("exception: " ^ Printexc.to_string e) }

let oracle_checks ~machine (c : Fcc.Compiler.t) ~cpl =
  let row =
    match Macs.Oracle.check_row ~machine c ~measured_cpl:cpl with
    | [] -> [ { id = "oracle:row"; outcome = Pass } ]
    | vs ->
        List.map
          (fun (v : Macs.Oracle.violation) ->
            { id = "oracle:" ^ v.invariant; outcome = Fail v.detail })
          vs
    | exception e ->
        [ { id = "oracle:row";
            outcome = Fail ("exception: " ^ Printexc.to_string e) } ]
  in
  let mono =
    if c.mode <> Job.Vector then []
    else
      match Macs.Oracle.check_opt_monotonicity ~machine c.kernel with
      | [] -> [ { id = "oracle:opt-monotonicity"; outcome = Pass } ]
      | vs ->
          [ { id = "oracle:opt-monotonicity";
              outcome =
                Fail
                  (String.concat "; "
                     (List.map
                        (fun (v : Macs.Oracle.violation) ->
                          v.invariant ^ ": " ^ v.detail)
                        vs)) } ]
      | exception Fcc.Compiler.Register_pressure msg ->
          [ { id = "oracle:opt-monotonicity";
              outcome = Skip ("register pressure: " ^ msg) } ]
      | exception e ->
          [ { id = "oracle:opt-monotonicity";
              outcome = Fail ("exception: " ^ Printexc.to_string e) } ]
  in
  row @ mono

let run ?(machine = Machine.c240) ?(sim = true) ?(fault_plans = [])
    ?(budget = Budget.none) ?fidelity (k : Lfk.Kernel.t) =
  let checks = ref [] in
  let emit c = checks := c :: !checks in
  (* compile at every level, remembering the functional compilations *)
  let compiled =
    List.map
      (fun opt ->
        let c, check = compile_check opt k in
        emit check;
        (opt, c))
      opt_levels
  in
  let functional =
    List.filter_map
      (fun (opt, c) ->
        match c with
        | Some c when Fcc.Opt_level.functional opt -> Some (opt, c)
        | _ -> None)
      compiled
  in
  let mode =
    match functional with (_, c) :: _ -> Some c.Fcc.Compiler.mode | [] -> None
  in
  (* differential runs; scalar-mode code ignores the level, so diff once *)
  let to_diff =
    match mode with
    | Some Job.Scalar -> (
        match functional with [] -> [] | x :: _ -> [ x ])
    | _ -> functional
  in
  List.iter (fun (opt, c) -> emit (diff_check opt c)) to_diff;
  (* listing round trip on the v61 program *)
  (match functional with
  | (_, c) :: _ -> emit (check_program c.Fcc.Compiler.program)
  | [] -> ());
  (* simulation, bounds, faults *)
  let cpl = ref None in
  (if sim then
     match functional with
     | [] -> ()
     | (_, c) :: _ ->
         let m, check = sim_check ~machine ~budget ~faults:Fault.none ?fidelity c in
         emit check;
         (match m with
         | Some m ->
             cpl := Some m.Measure.cpl;
             List.iter emit (oracle_checks ~machine c ~cpl:m.Measure.cpl)
         | None -> ());
         emit (fidelity_diff_check ~machine ~faults:Fault.none c);
         List.iter
           (fun plan ->
             let _, check = sim_check ~machine ~budget ~faults:plan ?fidelity c in
             emit check;
             emit (fidelity_diff_check ~machine ~faults:plan c))
           fault_plans);
  { kernel = k; mode; cpl = !cpl; checks = List.rev !checks }
