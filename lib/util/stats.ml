let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty input")

let mean xs =
  check_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

(* Total on the degenerate inputs a fully-failed suite produces: the
   harmonic mean of an empty sample is 0 (no completed kernels, no rate),
   and a zero element dominates the mean exactly as its limit does.
   Negative elements are still a caller bug. *)
let harmonic_mean xs =
  if Array.exists (fun x -> x < 0.0) xs then
    invalid_arg "Stats.harmonic_mean: negative element";
  if Array.length xs = 0 || Array.exists (fun x -> x = 0.0) xs then 0.0
  else
    let sum_inv = Array.fold_left (fun acc x -> acc +. (1.0 /. x)) 0.0 xs in
    float_of_int (Array.length xs) /. sum_inv

let geometric_mean xs =
  check_nonempty "Stats.geometric_mean" xs;
  let sum_log =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then
          invalid_arg "Stats.geometric_mean: nonpositive element"
        else acc +. log x)
      0.0 xs
  in
  exp (sum_log /. float_of_int (Array.length xs))

let variance xs =
  check_nonempty "Stats.variance" xs;
  let m = mean xs in
  let sum_sq = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
  sum_sq /. float_of_int (Array.length xs)

let stddev xs = sqrt (variance xs)

let min_max xs =
  check_nonempty "Stats.min_max" xs;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort Float.compare ys;
  ys

let median xs =
  check_nonempty "Stats.median" xs;
  let ys = sorted_copy xs in
  let n = Array.length ys in
  if n mod 2 = 1 then ys.(n / 2)
  else (ys.((n / 2) - 1) +. ys.(n / 2)) /. 2.0

let percentile p xs =
  check_nonempty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let ys = sorted_copy xs in
  let n = Array.length ys in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then ys.(lo)
  else
    let w = rank -. float_of_int lo in
    (ys.(lo) *. (1.0 -. w)) +. (ys.(hi) *. w)

let linear_fit pts =
  let n = List.length pts in
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
  let nf = float_of_int n in
  let denom = (nf *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then
    invalid_arg "Stats.linear_fit: degenerate abscissae";
  let slope = ((nf *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. nf in
  (intercept, slope)

let rel_error ~actual ~expected =
  if expected = 0.0 then invalid_arg "Stats.rel_error: expected is zero";
  Float.abs (actual -. expected) /. Float.abs expected

let within ~tolerance ~actual ~expected =
  rel_error ~actual ~expected <= tolerance
