(** Deterministic crash-point injection for durable writes.

    Every durable write in the repo — journal lines, shard cells, corpus
    entries, cache objects — goes through this sink as an explicit
    {e write boundary}.  Boundaries are numbered globally from 1 (under a
    mutex, so parallel workers share one sequence).  Normally the sink is
    transparent: it counts the boundary and performs the I/O.  Armed at
    boundary [n], it simulates the process dying right there:

    - {!Before}: nothing of boundary [n] reaches the file;
    - {!Torn}: a strict prefix (half) of the bytes reaches the file;
    - {!After}: all of boundary [n]'s bytes land, then the process dies.

    Dying means raising {!Crashed} and latching a {e dead} state: every
    subsequent boundary raises immediately without touching the file
    system, exactly as if the process were gone.  Harness code that
    drives a simulated crash catches {!Crashed} at the top level, calls
    {!reset}, and re-runs — the moral equivalent of restarting the
    process against whatever the "crash" left on disk. *)

type mode = Before | Torn | After

val mode_name : mode -> string
val mode_of_name : string -> mode option

exception Crashed of { site : string; point : int }
(** Raised at the armed boundary and at every boundary after it.  Must
    never be swallowed by exception barriers — a dead process does not
    quarantine a cell and move on. *)

val reset : unit -> unit
(** Zero the boundary counter, disarm, and clear the dead latch. *)

val arm : at:int -> mode:mode -> unit
(** Crash at boundary number [at] (1-based, counted from the last
    {!reset}) with the given mode. *)

val disarm : unit -> unit
(** Stop injecting; does not clear the dead latch or the counter. *)

val boundaries : unit -> int
(** Boundaries seen since the last {!reset}.  Run once disarmed to learn
    how many injection points a workload has, then sweep [1..n]. *)

val crashed : unit -> bool
(** Whether the dead latch is set. *)

val fired_at : unit -> int option
(** The boundary the latched crash fired at, if any. *)

val write : out_channel -> site:string -> string -> unit
(** One write boundary: output the string and flush, subject to the
    armed crash point.  [site] labels the boundary in {!Crashed}. *)

val rename : site:string -> string -> string -> unit
(** One rename boundary ([Sys.rename] is atomic, so [Torn] degenerates
    to [Before]): the publish step of two-phase commits. *)

val fsync_out : out_channel -> unit
(** Flush then [Unix.fsync] the channel; best-effort, not a boundary. *)

val fsync_dir : string -> unit
(** [Unix.fsync] a directory so a just-renamed entry survives power
    loss; best-effort, not a boundary. *)
