(** Monotonic wall-clock timing for run supervision.

    The watchdog budgets of the suite harness charge elapsed wall-clock
    seconds against a per-run allowance; a system clock stepping backwards
    (NTP) must never refund spent budget.  [now] therefore reports the
    maximum system time observed so far — nondecreasing across calls within
    a process.  The clamp is an atomic high-water mark, so [now] is safe to
    call concurrently from several domains. *)

val now : unit -> float
(** Monotonic wall-clock seconds (Unix epoch based, clamped to be
    nondecreasing). *)

val elapsed : since:float -> float
(** [elapsed ~since] is [max 0 (now () - since)]. *)
