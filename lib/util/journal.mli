(** Versioned, append-only, line-oriented journal files.

    The suite harness checkpoints one record per completed kernel so an
    interrupted run can resume without recomputing anything.  The format is
    deliberately dumb and durable:

    - one record per line; a record is a tag followed by [key=value]
      fields, tab-separated;
    - tags, keys and values are percent-escaped ([%XX]) so arbitrary
      strings round-trip byte-for-byte;
    - the first line is a header record [macs-journal] carrying
      [version=N] and [format=<schema name>] — loading verifies both;
    - floats are serialized as hex literals ({!put_float}), so every
      finite double round-trips exactly (the resume guarantee rests on
      this);
    - a process killed mid-write leaves at most one torn final line, which
      {!load} silently drops; any earlier undecodable line is corruption
      and fails the load. *)

type record = { tag : string; fields : (string * string) list }

val version : int
(** Current journal format version (bumped on incompatible changes). *)

val encode : record -> string
(** One line, no trailing newline. *)

val decode : string -> (record, string) result

val field : record -> string -> string option
val field_err : record -> string -> (string, string) result

(** {1 Typed field codecs} *)

val put_float : float -> string
(** Hex-literal rendering ([%h]); byte-exact round-trip through
    {!get_float} for every float, including [nan] and infinities. *)

val get_float : string -> float option
val put_int : int -> string
val get_int : string -> int option
val put_bool : bool -> string
val get_bool : string -> bool option

(** {1 File operations} *)

val create : ?sync:bool -> path:string -> format:string -> record list -> unit
(** Write a fresh journal: header then [records], as a single {!Sink}
    write boundary (a torn create leaves a byte prefix, never
    interleaved lines).  Truncates any existing file at [path].  With
    [~sync:true] the bytes are fsynced before the channel closes. *)

val append : path:string -> record -> unit
(** Append one record and flush (one {!Sink} write boundary).  The file
    must already carry a header (see {!create}). *)

val repair : path:string -> format:string -> (unit, string) result
(** Truncate a torn tail in place: everything after the longest prefix of
    complete, decodable lines is removed, so a subsequent {!append}
    starts a fresh record instead of concatenating onto torn bytes.
    Refuses to touch interior corruption (garbage followed by decodable
    lines) — that is left for {!load} to report rather than silently
    discarding valid records.  Call before appending to a journal a
    previous writer may have died holding. *)

val load : path:string -> format:string -> (record list, string) result
(** Read every record after the header, verifying magic, version and
    format.  A torn final line (interrupted writer) is dropped; earlier
    corruption is an error. *)

type inspection =
  | Fresh  (** missing, empty, or an interrupted {!create}: safe to recreate *)
  | Intact  (** header plus at least one complete record *)
  | Damaged of string  (** a complete first line that is not a matching header *)

val inspect : path:string -> format:string -> inspection
(** Crash triage for resume paths.  Because {!create} is one write and a
    torn write can only leave a byte prefix (it cannot manufacture a
    newline), a file with no complete first line — or a matching header
    with no complete record after it — is an interrupted create: nothing
    was ever appended to it, and recreating it loses no data.  A
    complete first line that fails to decode as a matching header is
    [Damaged] and must not be clobbered. *)

val is_fresh : path:string -> format:string -> bool
(** [inspect ~path ~format = Fresh]. *)

val write_atomic : path:string -> format:string -> record list -> unit
(** Like {!create}, but two-phase: writes a temporary file, fsyncs it,
    renames it into place, then fsyncs the parent directory — so neither
    a crash mid-write nor a power cut just after publish can leave an
    empty or torn journal where a complete one used to be. *)

(** {1 Per-worker shards}

    A parallel run gives each worker domain a private append-only shard
    file [<path>.shard<K>], so no two domains ever write the same file.
    A shard opens with the same header and config record as the main
    journal, then carries one [shard-cell] wrapper per inner record: the
    wrapper stores the cell index, a per-cell sequence number and the
    inner record's encoded line (percent-escaping nests cleanly).
    {!merge_shards} folds surviving shards back into the main journal in
    cell-index order, reconstructing the byte-identical sequential
    journal. *)

val shard_path : path:string -> int -> string
(** [shard_path ~path k] is ["<path>.shard<K>"]. *)

val shards : path:string -> (int * string) list
(** Shard files currently present beside [path], sorted by shard index.
    Empty when the directory cannot be read. *)

val remove_shards : path:string -> unit
(** Delete every shard file beside [path]; missing files are ignored. *)

val shard_start :
  path:string -> shard:int -> format:string -> config:record -> unit
(** Create (truncating) shard [shard] of [path]: header then [config].
    The config record must be byte-identical to the main journal's so
    {!merge_shards} can refuse mismatched resumes. *)

val shard_append :
  path:string -> shard:int -> index:int -> seq:int -> record -> unit
(** Append inner record number [seq] of cell [index] to shard [shard]. *)

val shard_unwrap : record -> (int * int * record, string) result
(** Decode a [shard-cell] wrapper back to [(index, seq, inner record)]. *)

val merge_shards :
  path:string ->
  format:string ->
  config_ok:(record -> (unit, string) result) ->
  index_of:(record -> int option) ->
  (record * (int * record list) list, string) result
(** Merge-on-resume.  Repairs and loads the main journal at [path],
    checks its config record (the first record after the header) with
    [config_ok], and groups the remaining records into per-cell blocks:
    a record with [index_of r = Some i] closes the block for cell [i],
    records mapped to [None] belong to the next closer (a trailing block
    with no closer is a torn cell and is dropped).  Then loads every
    shard file beside [path] — refusing if a shard's config record fails
    [config_ok] — and merges its cells in.  When a cell somehow appears
    both in the main journal and in a shard, the main journal wins.

    If any shards were present, the main journal is atomically rewritten
    as header, config, then every cell's records in ascending cell-index
    order — byte-identical to what a sequential run would have produced
    for those cells — and the shards are deleted.  Returns the config
    record (original bytes) and the merged cells, sorted by index. *)
