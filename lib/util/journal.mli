(** Versioned, append-only, line-oriented journal files.

    The suite harness checkpoints one record per completed kernel so an
    interrupted run can resume without recomputing anything.  The format is
    deliberately dumb and durable:

    - one record per line; a record is a tag followed by [key=value]
      fields, tab-separated;
    - tags, keys and values are percent-escaped ([%XX]) so arbitrary
      strings round-trip byte-for-byte;
    - the first line is a header record [macs-journal] carrying
      [version=N] and [format=<schema name>] — loading verifies both;
    - floats are serialized as hex literals ({!put_float}), so every
      finite double round-trips exactly (the resume guarantee rests on
      this);
    - a process killed mid-write leaves at most one torn final line, which
      {!load} silently drops; any earlier undecodable line is corruption
      and fails the load. *)

type record = { tag : string; fields : (string * string) list }

val version : int
(** Current journal format version (bumped on incompatible changes). *)

val encode : record -> string
(** One line, no trailing newline. *)

val decode : string -> (record, string) result

val field : record -> string -> string option
val field_err : record -> string -> (string, string) result

(** {1 Typed field codecs} *)

val put_float : float -> string
(** Hex-literal rendering ([%h]); byte-exact round-trip through
    {!get_float} for every float, including [nan] and infinities. *)

val get_float : string -> float option
val put_int : int -> string
val get_int : string -> int option
val put_bool : bool -> string
val get_bool : string -> bool option

(** {1 File operations} *)

val create : path:string -> format:string -> record list -> unit
(** Write a fresh journal: header then [records].  Truncates any existing
    file at [path]. *)

val append : path:string -> record -> unit
(** Append one record and flush.  The file must already carry a header
    (see {!create}). *)

val repair : path:string -> format:string -> (unit, string) result
(** Truncate a torn tail in place: everything after the longest prefix of
    complete, decodable lines is removed, so a subsequent {!append}
    starts a fresh record instead of concatenating onto torn bytes.
    Refuses to touch interior corruption (garbage followed by decodable
    lines) — that is left for {!load} to report rather than silently
    discarding valid records.  Call before appending to a journal a
    previous writer may have died holding. *)

val load : path:string -> format:string -> (record list, string) result
(** Read every record after the header, verifying magic, version and
    format.  A torn final line (interrupted writer) is dropped; earlier
    corruption is an error. *)
