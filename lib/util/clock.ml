(* Wall-clock time source for watchdog budgets.  [Unix.gettimeofday] can
   step backwards under NTP adjustment; a budget must never be refunded by
   a clock step, so [now] clamps to the latest time ever observed.  The
   high-water mark is an [Atomic.t] so that watchdogs polling from several
   worker domains never race: each domain advances the shared clamp with a
   compare-and-set loop and every reader sees a nondecreasing sequence. *)

let last = Atomic.make neg_infinity

let now () =
  let t = Unix.gettimeofday () in
  let rec clamp () =
    let seen = Atomic.get last in
    if t <= seen then seen
    else if Atomic.compare_and_set last seen t then t
    else clamp ()
  in
  clamp ()

let elapsed ~since = Float.max 0.0 (now () -. since)
