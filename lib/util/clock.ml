(* Wall-clock time source for watchdog budgets.  [Unix.gettimeofday] can
   step backwards under NTP adjustment; a budget must never be refunded by
   a clock step, so [now] clamps to the latest time ever observed. *)

let last = ref neg_infinity

let now () =
  let t = Unix.gettimeofday () in
  if t > !last then last := t;
  !last

let elapsed ~since = Float.max 0.0 (now () -. since)
