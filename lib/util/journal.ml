type record = { tag : string; fields : (string * string) list }

let version = 1
let magic = "macs-journal"

(* ---- field escaping ----
   Records are one line each, fields tab-separated, [key=value].  Keys and
   values are percent-escaped so arbitrary strings (fault-plan specs, error
   messages) survive the round trip byte-for-byte. *)

let must_escape c =
  c = '%' || c = '\t' || c = '\n' || c = '\r' || c = '='

let escape s =
  if String.exists must_escape s then begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if must_escape c then Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
        else Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end
  else s

let unescape s =
  if not (String.contains s '%') then Ok s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let rec go i =
      if i >= n then Ok (Buffer.contents buf)
      else if s.[i] = '%' then
        if i + 2 >= n then Error "truncated %-escape"
        else
          match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
          | Some code ->
              Buffer.add_char buf (Char.chr code);
              go (i + 3)
          | None -> Error (Printf.sprintf "bad %%-escape %S" (String.sub s i 3))
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
    in
    go 0
  end

(* ---- record codec ---- *)

let encode r =
  String.concat "\t"
    (escape r.tag
    :: List.map (fun (k, v) -> escape k ^ "=" ^ escape v) r.fields)

let ( let* ) = Result.bind

let decode line =
  match String.split_on_char '\t' line with
  | [] | [ "" ] -> Error "empty journal line"
  | tag :: rest ->
      let* tag = unescape tag in
      let* fields =
        List.fold_left
          (fun acc tok ->
            let* acc = acc in
            match String.index_opt tok '=' with
            | None -> Error (Printf.sprintf "field %S has no '='" tok)
            | Some i ->
                let* k = unescape (String.sub tok 0 i) in
                let* v =
                  unescape (String.sub tok (i + 1) (String.length tok - i - 1))
                in
                Ok ((k, v) :: acc))
          (Ok []) rest
      in
      Ok { tag; fields = List.rev fields }

let field r key = List.assoc_opt key r.fields

let field_err r key =
  match field r key with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "record %S: missing field %S" r.tag key)

(* Floats travel as hex literals ("%h"): every finite double round-trips
   byte-exactly, and nan/infinity print and parse symmetrically. *)
let put_float x = Printf.sprintf "%h" x
let get_float s = float_of_string_opt s
let put_int = string_of_int
let get_int s = int_of_string_opt s
let put_bool b = if b then "1" else "0"

let get_bool = function
  | "1" -> Some true
  | "0" -> Some false
  | _ -> None

(* ---- file I/O ---- *)

let header ~format =
  {
    tag = magic;
    fields = [ ("version", string_of_int version); ("format", format) ];
  }

let check_header ~format r =
  if r.tag <> magic then
    Error (Printf.sprintf "not a journal: leading tag %S" r.tag)
  else
    let* v = field_err r "version" in
    let* f = field_err r "format" in
    if v <> string_of_int version then
      Error (Printf.sprintf "unsupported journal version %s (want %d)" v version)
    else if f <> format then
      Error (Printf.sprintf "journal format %S, expected %S" f format)
    else Ok ()

(* All journal bytes pass through [Sink] as explicit write boundaries so
   the crash-sweep harness can kill a simulated process at any of them.
   [create] is a single boundary (header + initial records in one write):
   a torn create leaves a byte prefix, never interleaved lines. *)

let create ?(sync = false) ~path ~format records =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (encode (header ~format));
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (encode r);
      Buffer.add_char buf '\n')
    records;
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Sink.write oc ~site:("journal-create:" ^ path) (Buffer.contents buf);
      if sync then Sink.fsync_out oc)

let append ~path r =
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Sink.write oc ~site:("journal-append:" ^ path) (encode r ^ "\n"))

let repair ~path ~format =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "journal %s does not exist" path)
  else begin
    let ic = open_in_bin path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let n = String.length s in
    (* end of the longest prefix of newline-terminated decodable lines *)
    let rec prefix_end start =
      if start >= n then start
      else
        match String.index_from_opt s start '\n' with
        | None -> start
        | Some nl -> (
            match decode (String.sub s start (nl - start)) with
            | Ok _ -> prefix_end (nl + 1)
            | Error _ -> start)
    in
    (* a decodable line after the prefix means interior corruption, which
       truncation would silently discard — leave it for [load] to report *)
    let rec tail_has_good start =
      if start >= n then false
      else
        match String.index_from_opt s start '\n' with
        | None -> false
        | Some nl -> (
            match decode (String.sub s start (nl - start)) with
            | Ok _ -> true
            | Error _ -> tail_has_good (nl + 1))
    in
    if n = 0 then Error (Printf.sprintf "journal %s is empty" path)
    else
      match String.index_opt s '\n' with
      | None -> Error (Printf.sprintf "journal %s has no complete header" path)
      | Some nl -> (
          match decode (String.sub s 0 nl) with
          | Error e -> Error (Printf.sprintf "journal %s: bad header: %s" path e)
          | Ok hd -> (
              let* () = check_header ~format hd in
              let keep = prefix_end 0 in
              if keep >= n || tail_has_good keep then Ok ()
              else begin
                let oc = open_out_bin path in
                Fun.protect
                  ~finally:(fun () -> close_out oc)
                  (fun () -> output_string oc (String.sub s 0 keep));
                Ok ()
              end))
  end

(* ---- crash triage ----

   A journal is born in one [create] write of header + initial records,
   and a torn write can only leave a byte *prefix* — it can never
   manufacture a newline.  So a file with no complete first line, or a
   complete header but no complete record after it, is just a create
   that never finished: nothing can have been appended to it, and it is
   safe to start over.  A complete first line that is not a matching
   header is genuine damage (or somebody else's file) and must not be
   clobbered. *)

type inspection = Fresh | Intact | Damaged of string

let inspect ~path ~format =
  if not (Sys.file_exists path) then Fresh
  else begin
    let ic = open_in_bin path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match String.index_opt s '\n' with
    | None -> Fresh
    | Some nl -> (
        match decode (String.sub s 0 nl) with
        | Error e ->
            Damaged (Printf.sprintf "journal %s: undecodable first line: %s" path e)
        | Ok hd -> (
            match check_header ~format hd with
            | Error e -> Damaged (Printf.sprintf "journal %s: %s" path e)
            | Ok () ->
                if String.index_from_opt s (nl + 1) '\n' = None then Fresh
                else Intact))
  end

let is_fresh ~path ~format = inspect ~path ~format = Fresh

let write_atomic ~path ~format records =
  let tmp = path ^ ".tmp" in
  (* two-phase publish: the tmp bytes are forced to disk *before* the
     rename, and the directory entry after it, so a power cut right
     after publish cannot surface an empty or torn main journal *)
  create ~sync:true ~path:tmp ~format records;
  Sink.rename ~site:("journal-publish:" ^ path) tmp path;
  Sink.fsync_dir (Filename.dirname path)

(* ---- per-worker shards ----

   A parallel run gives each worker domain its own append-only shard file
   [<path>.shard<K>] so no two domains ever write the same journal.  A
   shard opens with the same header and config record as the main journal
   and then carries one [shard-cell] wrapper per inner record; the inner
   record travels as its own encoded line inside a [rec=] field (the
   percent-escaping nests cleanly).  [merge_shards] folds any surviving
   shards back into the main journal in cell-index order, reconstructing
   the byte-identical sequential journal. *)

let shard_tag = "shard-cell"
let shard_path ~path k = Printf.sprintf "%s.shard%d" path k

let shards ~path =
  let dir = Filename.dirname path in
  let base = Filename.basename path ^ ".shard" in
  let bn = String.length base in
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
      Array.to_list entries
      |> List.filter_map (fun e ->
             if String.length e > bn && String.sub e 0 bn = base then
               match int_of_string_opt (String.sub e bn (String.length e - bn)) with
               | Some k when k >= 0 -> Some (k, Filename.concat dir e)
               | _ -> None
             else None)
      |> List.sort compare

let remove_shards ~path =
  List.iter
    (fun (_, file) -> try Sys.remove file with Sys_error _ -> ())
    (shards ~path)

let shard_start ~path ~shard ~format ~config =
  create ~path:(shard_path ~path shard) ~format [ config ]

let shard_wrap ~index ~seq r =
  {
    tag = shard_tag;
    fields = [ ("i", put_int index); ("n", put_int seq); ("rec", encode r) ];
  }

let shard_unwrap r =
  if r.tag <> shard_tag then
    Error (Printf.sprintf "expected a %S record, got %S" shard_tag r.tag)
  else
    let* i = field_err r "i" in
    let* n = field_err r "n" in
    let* line = field_err r "rec" in
    match (get_int i, get_int n) with
    | Some i, Some n ->
        let* inner = decode line in
        Ok (i, n, inner)
    | _ -> Error (Printf.sprintf "%s record: non-integer cell coordinates" shard_tag)

let shard_append ~path ~shard ~index ~seq r =
  append ~path:(shard_path ~path shard) (shard_wrap ~index ~seq r)

let load ~path ~format =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "journal %s does not exist" path)
  else begin
    let ic = open_in path in
    let lines = ref [] in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        (* a run killed mid-write can leave a torn final line: drop any
           trailing line that fails to decode rather than rejecting the
           whole journal *)
        match List.rev !lines with
        | [] -> Error (Printf.sprintf "journal %s is empty" path)
        | first :: rest ->
            let* hd = decode first in
            let* () = check_header ~format hd in
            let rec decode_rows acc = function
              | [] -> Ok (List.rev acc)
              | [ last ] -> (
                  match decode last with
                  | Ok r -> Ok (List.rev (r :: acc))
                  | Error _ -> Ok (List.rev acc))
              | line :: rest -> (
                  match decode line with
                  | Ok r -> decode_rows (r :: acc) rest
                  | Error e ->
                      Error (Printf.sprintf "corrupt journal line: %s" e))
            in
            decode_rows [] rest)
  end

(* ---- merge-on-resume ---- *)

let merge_shards ~path ~format ~config_ok ~index_of =
  let* () = repair ~path ~format in
  let* records = load ~path ~format in
  match records with
  | [] -> Error (Printf.sprintf "journal %s holds no config record" path)
  | config :: body ->
      let* () = config_ok config in
      (* Group the main journal's records into per-cell blocks: every
         record up to and including the next closer ([index_of] = [Some i])
         belongs to cell [i].  A trailing block without a closer is a torn
         cell — dropped, so the cell simply re-runs. *)
      let main_cells =
        let rec go pending acc = function
          | [] -> List.rev acc
          | r :: rest -> (
              match index_of r with
              | Some i -> go [] ((i, List.rev (r :: pending)) :: acc) rest
              | None -> go (r :: pending) acc rest)
        in
        go [] [] body
      in
      let shard_files = shards ~path in
      (* a worker killed inside [shard_start] leaves a shard with a torn
         or absent header: no cell can have landed in it, so it merges as
         empty (and is still swept away below) *)
      let usable =
        List.filter
          (fun (_, file) -> inspect ~path:file ~format <> Fresh)
          shard_files
      in
      let load_shard (_, file) =
        let* () = repair ~path:file ~format in
        let* records = load ~path:file ~format in
        match records with
        | [] -> Error (Printf.sprintf "shard %s holds no config record" file)
        | cfg :: body ->
            let* () =
              match config_ok cfg with
              | Ok () -> Ok ()
              | Error e ->
                  Error
                    (Printf.sprintf
                       "shard %s: config header mismatch, refusing to merge: %s"
                       file e)
            in
            List.fold_left
              (fun acc r ->
                let* acc = acc in
                let* cell = shard_unwrap r in
                Ok (cell :: acc))
              (Ok []) body
      in
      let* triples =
        List.fold_left
          (fun acc sf ->
            let* acc = acc in
            let* cells = load_shard sf in
            Ok (List.rev_append cells acc))
          (Ok []) usable
      in
      let sorted =
        List.sort (fun (i, n, _) (j, m, _) -> compare (i, n) (j, m)) triples
      in
      let shard_cells =
        let rec go acc = function
          | [] -> List.rev_map (fun (i, rs) -> (i, List.rev rs)) acc
          | (i, _, r) :: rest -> (
              match acc with
              | (j, rs) :: tl when j = i -> go ((j, r :: rs) :: tl) rest
              | _ -> go ((i, [ r ]) :: acc) rest)
        in
        go [] sorted
      in
      let module IMap = Map.Make (Int) in
      let add m (i, rs) = if IMap.mem i m then m else IMap.add i rs m in
      let merged = List.fold_left add IMap.empty main_cells in
      let merged = List.fold_left add merged shard_cells in
      let cells = IMap.bindings merged in
      if shard_files <> [] then begin
        write_atomic ~path ~format (config :: List.concat_map snd cells);
        List.iter (fun (_, file) -> Sys.remove file) shard_files
      end;
      Ok (config, cells)
