(** Small statistics toolkit used by the bounds model, the calibration
    harness, and the report generators.

    All functions operate on [float array] or [float list] inputs and raise
    [Invalid_argument] on empty input unless stated otherwise. *)

val mean : float array -> float
(** Arithmetic mean. *)

val harmonic_mean : float array -> float
(** Harmonic mean.  Used to convert average CPF into the paper's HMEAN
    MFLOPS figure (eq. 4).  Total on the degenerate inputs a fully-failed
    suite produces: an empty array yields [0.0] (never NaN), and any zero
    element yields [0.0] (the limit value).  Negative elements raise
    [Invalid_argument]. *)

val geometric_mean : float array -> float
(** Geometric mean; every element must be strictly positive. *)

val variance : float array -> float
(** Population variance. *)

val stddev : float array -> float
(** Population standard deviation. *)

val min_max : float array -> float * float
(** Smallest and largest element. *)

val median : float array -> float
(** Median (average of the two central elements for even lengths).  Does not
    modify its argument. *)

val percentile : float -> float array -> float
(** [percentile p xs] for [p] in [0;100], linear interpolation between
    order statistics.  Does not modify its argument. *)

val linear_fit : (float * float) list -> float * float
(** [linear_fit pts] returns [(intercept, slope)] of the least-squares line
    through [pts].  Used by the calibration harness to recover [X + Y] and
    [Z] from measured [cycles = (X+Y) + Z * vl] samples.  Requires at least
    two distinct abscissae. *)

val rel_error : actual:float -> expected:float -> float
(** [rel_error ~actual ~expected] is [|actual - expected| / |expected|].
    [expected] must be nonzero. *)

val within : tolerance:float -> actual:float -> expected:float -> bool
(** [within ~tolerance ~actual ~expected] tests relative error against
    [tolerance] (e.g. [0.02] for 2%). *)
