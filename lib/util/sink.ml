(* Deterministic crash-point injection for durable writes.

   Every write that matters for crash consistency — journal lines, shard
   cells, corpus entries, cache objects — funnels through this module as
   an explicit *write boundary*.  A disarmed sink just counts boundaries
   and performs the I/O; an armed sink simulates the process dying at a
   chosen boundary: it raises {!Crashed} after writing nothing ([Before]),
   a strict prefix ([Torn]) or all ([After]) of that boundary's bytes,
   and then latches *dead* so every later boundary raises immediately
   without touching the file system — a dead process writes nothing.

   The whole state machine sits behind one mutex so parallel workers see
   one global boundary sequence; the exception is raised only after the
   lock is released. *)

type mode = Before | Torn | After

let mode_name = function
  | Before -> "before"
  | Torn -> "torn"
  | After -> "after"

let mode_of_name = function
  | "before" -> Some Before
  | "torn" -> Some Torn
  | "after" -> Some After
  | _ -> None

exception Crashed of { site : string; point : int }

let () =
  Printexc.register_printer (function
    | Crashed { site; point } ->
        Some (Printf.sprintf "Sink.Crashed(point %d at %s)" point site)
    | _ -> None)

type state = {
  mutable counter : int;  (** boundaries seen since the last {!reset} *)
  mutable armed : (int * mode) option;
  mutable dead : bool;
  mutable fired : int;  (** boundary the latched crash fired at, 0 = none *)
}

let st = { counter = 0; armed = None; dead = false; fired = 0 }
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let reset () =
  locked (fun () ->
      st.counter <- 0;
      st.armed <- None;
      st.dead <- false;
      st.fired <- 0)

let arm ~at ~mode = locked (fun () -> st.armed <- Some (at, mode))
let disarm () = locked (fun () -> st.armed <- None)
let boundaries () = locked (fun () -> st.counter)
let crashed () = locked (fun () -> st.dead)
let fired_at () = locked (fun () -> if st.dead then Some st.fired else None)

(* One boundary: decide under the lock, do at most the permitted I/O,
   release, then raise if the process just "died".  [bytes] is what this
   boundary wants to write; [emit] performs a (possibly partial) write. *)
let boundary ~site ~bytes ~emit ~commit =
  let action =
    locked (fun () ->
        if st.dead then `Dead st.fired
        else begin
          st.counter <- st.counter + 1;
          match st.armed with
          | Some (at, mode) when at = st.counter ->
              st.dead <- true;
              st.fired <- st.counter;
              `Crash (st.counter, mode)
          | _ -> `Write
        end)
  in
  match action with
  | `Dead point -> raise (Crashed { site; point })
  | `Write ->
      emit bytes;
      commit ()
  | `Crash (point, mode) ->
      (match mode with
      | Before -> ()
      | Torn -> emit (String.sub bytes 0 (String.length bytes / 2))
      | After ->
          emit bytes;
          commit ());
      raise (Crashed { site; point })

let write oc ~site s =
  boundary ~site ~bytes:s
    ~emit:(fun b -> output_string oc b)
    ~commit:(fun () -> flush oc)

let rename ~site src dst =
  (* [bytes] is unused for a rename; [Torn] degenerates to [Before] —
     POSIX rename is atomic, there is no half-renamed state. *)
  boundary ~site ~bytes:""
    ~emit:(fun _ -> ())
    ~commit:(fun () -> Sys.rename src dst)

(* Durability helpers: not boundaries (an fsync changes no visible
   bytes), best-effort because not every file system supports them. *)

let fsync_out oc =
  flush oc;
  try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ()

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd
