type t =
  | Livelock of {
      site : string;
      cycle : int;
      pending : int;
      word : int option;
    }
  | Stall_out of { site : string; cycle : int; pending : int; plan : string }
  | Dependence_cycle of { site : string; scheduled : int; total : int }
  | Parse_failure of { site : string; message : string }
  | Budget_exceeded of {
      site : string;
      resource : string;
      budget : float;
      spent : float;
    }
  | Oracle_violation of { site : string; invariant : string; detail : string }
  | Interp_fault of { site : string; detail : string }

exception Error of t

let livelock ~site ~cycle ~pending ?word () =
  Livelock { site; cycle; pending; word }

let stall_out ~site ~cycle ~pending ~plan =
  Stall_out { site; cycle; pending; plan }

let dependence_cycle ~site ~scheduled ~total =
  Dependence_cycle { site; scheduled; total }

let parse_failure ~site message = Parse_failure { site; message }

let budget_exceeded ~site ~resource ~budget ~spent =
  Budget_exceeded { site; resource; budget; spent }

let oracle_violation ~site ~invariant detail =
  Oracle_violation { site; invariant; detail }

let interp_fault ~site detail = Interp_fault { site; detail }

let kind = function
  | Livelock _ -> "livelock"
  | Stall_out _ -> "stall-out"
  | Dependence_cycle _ -> "dependence-cycle"
  | Parse_failure _ -> "parse-failure"
  | Budget_exceeded _ -> "budget-exceeded"
  | Oracle_violation _ -> "oracle-violation"
  | Interp_fault _ -> "interp-fault"

let site = function
  | Livelock { site; _ }
  | Stall_out { site; _ }
  | Dependence_cycle { site; _ }
  | Parse_failure { site; _ }
  | Budget_exceeded { site; _ }
  | Oracle_violation { site; _ }
  | Interp_fault { site; _ } ->
      site

let to_string = function
  | Livelock { site; cycle; pending; word } ->
      Printf.sprintf
        "livelock at %s: no memory progress by cycle %d (%d pending%s)" site
        cycle pending
        (match word with
        | Some w -> Printf.sprintf ", retrying word %d" w
        | None -> "")
  | Stall_out { site; cycle; pending; plan } ->
      Printf.sprintf
        "stall-out at %s: no progress by cycle %d under fault plan %S (%d \
         pending)"
        site cycle plan pending
  | Dependence_cycle { site; scheduled; total } ->
      Printf.sprintf
        "dependence cycle at %s: %d of %d instructions scheduled before no \
         candidate was ready"
        site scheduled total
  | Parse_failure { site; message } ->
      Printf.sprintf "parse failure at %s: %s" site message
  | Budget_exceeded { site; resource; budget; spent } ->
      Printf.sprintf
        "budget exceeded at %s: %s budget of %g exhausted (%g spent); run \
         cancelled by the watchdog"
        site resource budget spent
  | Oracle_violation { site; invariant; detail } ->
      Printf.sprintf "oracle violation at %s: invariant %S broken: %s" site
        invariant detail
  | Interp_fault { site; detail } ->
      Printf.sprintf "interpreter fault at %s: %s" site detail

let pp fmt t = Format.pp_print_string fmt (to_string t)
let raise_error t = raise (Error t)
let of_result = function Ok v -> v | Error e -> raise_error e

let () =
  Printexc.register_printer (function
    | Error t -> Some (Printf.sprintf "Macs_error.Error(%s)" (to_string t))
    | _ -> None)
