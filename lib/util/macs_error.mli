(** Structured error channel for the MACS toolchain.

    Internal failure guards used to [failwith], killing a whole experiment
    suite on one bad kernel.  Every recoverable failure is instead described
    by a value of {!t}, threaded as a [result] through the fallible entry
    points ([Sim.run], [Cosim.replay], [Schedule.pack], [Measure.run]), so
    suite runners can degrade to a diagnostic row and keep going.  Each
    variant carries enough context (cycle number, pending accesses, fault
    plan) to tell a livelocked simulation from a fault-induced stall-out or
    a scheduler cycle without re-running anything. *)

type t =
  | Livelock of {
      site : string;  (** e.g. ["Sim.run"] or ["Cosim.replay"] *)
      cycle : int;  (** cycle at which the guard tripped *)
      pending : int;  (** in-flight instructions / undrained accesses *)
      word : int option;  (** the word address being retried, if one *)
    }
      (** A progress guard tripped on a healthy machine: the simulation
          stopped accepting memory accesses (or the replay stopped draining
          streams) for an implausibly long window. *)
  | Stall_out of {
      site : string;
      cycle : int;
      pending : int;
      plan : string;  (** name of the active fault plan *)
    }
      (** Same guard, but under an active fault plan: the injected faults
          (e.g. a stuck bank) starved the run of progress. *)
  | Dependence_cycle of {
      site : string;
      scheduled : int;  (** instructions placed before the cycle was hit *)
      total : int;
    }  (** The list scheduler found no ready instruction. *)
  | Parse_failure of { site : string; message : string }
  | Budget_exceeded of {
      site : string;
      resource : string;  (** ["cycles"] or ["wall-clock seconds"] *)
      budget : float;  (** the configured limit *)
      spent : float;  (** how much had been consumed when the watchdog fired *)
    }
      (** A supervised run exhausted its watchdog budget and was cancelled
          mid-flight — distinct from {!Livelock}: the run may well have been
          making progress, it was just over its allowance. *)
  | Oracle_violation of { site : string; invariant : string; detail : string }
      (** The bound-oracle cross-validation found a hierarchy invariant
          broken (e.g. a MACS bound above the measured time): either the
          machine preset is inconsistent or the models have drifted. *)
  | Interp_fault of { site : string; detail : string }
      (** The functional interpreter hit a semantic fault — an
          out-of-bounds array access or a reference to an undeclared
          array.  On compiled output this means the compiler emitted code
          that does not match its kernel's storage, exactly the kind of
          divergence the differential fuzzer exists to catch. *)

exception Error of t

val livelock : site:string -> cycle:int -> pending:int -> ?word:int -> unit -> t
val stall_out : site:string -> cycle:int -> pending:int -> plan:string -> t
val dependence_cycle : site:string -> scheduled:int -> total:int -> t
val parse_failure : site:string -> string -> t

val budget_exceeded :
  site:string -> resource:string -> budget:float -> spent:float -> t

val oracle_violation : site:string -> invariant:string -> string -> t
val interp_fault : site:string -> string -> t

val kind : t -> string
(** Short machine-readable tag: ["livelock"], ["stall-out"],
    ["dependence-cycle"], ["parse-failure"], ["budget-exceeded"],
    ["oracle-violation"], ["interp-fault"]. *)

val site : t -> string

val to_string : t -> string
(** One-line diagnostic, e.g.
    ["stall-out at Sim.run: no progress by cycle 1000213 under fault plan \
      \"dead-bank\" (3 pending)"]. *)

val pp : Format.formatter -> t -> unit

val raise_error : t -> 'a
(** [raise (Error t)]. *)

val of_result : ('a, t) result -> 'a
(** Unwrap, raising {!Error} on [Error].  The conventional body of a
    [*_exn] entry point. *)
