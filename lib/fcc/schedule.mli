open Convex_isa
open Convex_machine

(** Chime-aware list scheduling.

    The depth-first order produced by expression lowering chains each load
    into its consumers (good), but long arithmetic statements emit bursts
    of same-pipe instructions that cannot share a chime (LFK8's triple-mul
    runs).  This pass reorders a loop body, respecting dependences, to
    greedily pack instructions into chimes — the compiler's own model of
    the hardware's chime rules (one instruction per pipe, two reads and
    one write per vector register pair, scalar memory barriers).

    Preserved dependences: RAW/WAR/WAW through vector and scalar
    registers, and the relative order of memory operations touching the
    same array.  Instructions are otherwise free to move; ties are broken
    by original program order, so an already well-packed schedule (LFK1)
    comes out unchanged. *)

val pack :
  machine:Machine.t ->
  Instr.t list ->
  (Instr.t list, Macs_util.Macs_error.t) Stdlib.result
(** Reorder a loop body.  On success the result is a permutation of the
    input that opens no more chimes than the input does (when the greedy
    schedule comes out worse — possible on rare dependence shapes — the
    input order is returned unchanged).  A body whose dependence graph is
    cyclic (possible only for hand-built bodies; lowering never produces
    one) yields
    [Error (Dependence_cycle _)]; a scheduler that stops making progress
    yields [Error (Livelock _)].  Callers that cannot proceed unpacked
    should fall back to the original order. *)

val pack_exn : machine:Machine.t -> Instr.t list -> Instr.t list
(** Like {!pack}; raises {!Macs_util.Macs_error.Error} on failure. *)

val chime_count : machine:Machine.t -> Instr.t list -> int
(** Number of chimes the compiler's model assigns to a body — the cost
    function [pack] minimizes greedily. *)
