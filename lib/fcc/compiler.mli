open Convex_isa
open Convex_vpsim

(** The vectorizing compiler: lowers a kernel's loop IR to Convex vector
    assembly, standing in for the Convex `fc` Fortran compiler V6.1.

    The pipeline per kernel: scalar-register allocation (loop-invariant
    scalars to s-registers, overflow spilled to a constant pool reloaded
    inside the loop — the paper's LFK8 chime-splitting scalar loads),
    depth-first expression lowering with on-the-fly vector-register
    allocation over the eight v-registers, reduction lowering (vector sum
    into a scalar partial accumulated by a scalar add, re-initialised and
    stored per segment), and strip-mined loop assembly ([smovvl] header,
    loop-control tail). *)

exception Register_pressure of string
(** Raised when an expression needs more than eight live vector registers
    even after dropping rematerialisable loads. *)

type t = {
  kernel : Lfk.Kernel.t;
  opt : Opt_level.t;
  mode : Job.mode;
      (** [Vector] when the loop vectorizes; [Scalar] when a loop-carried
          dependence forces the C-240's scalar mode *)
  verdict : Vectorizer.verdict;
  program : Program.t;  (** one strip of the inner loop, in schedule order *)
  job : Job.t;  (** the runnable strip-mined loop nest *)
  sregs : (int * float) list;  (** initial scalar register file *)
  flops_per_iteration : int;
  scalar_map : (string * int) list;  (** scalar name → s-register index *)
  spilled_scalars : string list;
      (** scalars kept in the [SCAL] constant pool, reloaded per iteration *)
}

val compile : ?opt:Opt_level.t -> ?force_scalar:bool -> Lfk.Kernel.t -> t
(** Compile a kernel ([opt] defaults to {!Opt_level.v61}).  Kernels with a
    loop-carried flow dependence (see {!Vectorizer}) are compiled to
    scalar code; [force_scalar] compiles a vectorizable kernel to scalar
    code anyway (the vectorization-speedup ablation).  Raises
    [Invalid_argument] if the kernel fails {!Lfk.Kernel.validate}. *)

val initial_store : t -> Store.t
(** The kernel's initial data plus the compiler's constant pool. *)

val initial_sregs : t -> (int * float) list

val run_interp : t -> Store.t
(** Convenience: build the initial store, interpret the job, return the
    mutated store.  Raises [Invalid_argument] for non-functional
    optimization levels (see {!Opt_level.functional}) and
    [Macs_util.Macs_error.Error (Interp_fault _)] if the compiled code
    faults — compiler output over its own kernel's storage never should. *)

val listing : t -> string
(** Assembly listing of the strip body. *)
