open Convex_isa
open Convex_vpsim
module Ir = Lfk.Ir
module Kernel = Lfk.Kernel

exception Register_pressure of string

type t = {
  kernel : Kernel.t;
  opt : Opt_level.t;
  mode : Job.mode;
  verdict : Vectorizer.verdict;
  program : Program.t;
  job : Job.t;
  sregs : (int * float) list;
  flops_per_iteration : int;
  scalar_map : (string * int) list;
  spilled_scalars : string list;
}

let scalar_pool_array = "SCAL"

(* ------------------------------------------------------------------ *)
(* Scalar-register allocation                                          *)
(* ------------------------------------------------------------------ *)

type scalar_plan = {
  map : (string * int) list;  (* name -> s-register *)
  spilled : (string * int) list;  (* name -> constant-pool slot *)
  acc_reg : int option;
  partial_reg : int option;
  spill_temp : int option;
  initial : (int * float) list;
}

let rec expr_scalar_uses acc = function
  | Ir.Scalar s -> s :: acc
  | Ir.Load _ | Ir.Temp _ -> acc
  | Ir.Add (a, b) | Ir.Sub (a, b) | Ir.Mul (a, b) | Ir.Div (a, b) ->
      expr_scalar_uses (expr_scalar_uses acc a) b
  | Ir.Neg a | Ir.Sqrt a -> expr_scalar_uses acc a
  | Ir.Gather { index; _ } -> expr_scalar_uses acc index
  | Ir.Select { a; b; if_true; if_false; _ } ->
      expr_scalar_uses
        (expr_scalar_uses (expr_scalar_uses (expr_scalar_uses acc a) b)
           if_true)
        if_false

let plan_scalars (k : Kernel.t) =
  let uses = Hashtbl.create 16 in
  let order = ref [] in
  let note s =
    if not (Hashtbl.mem uses s) then order := s :: !order;
    Hashtbl.replace uses s (1 + Option.value ~default:0 (Hashtbl.find_opt uses s))
  in
  List.iter
    (fun stmt ->
      let uses =
        match stmt with
        | Ir.Let (_, e) | Ir.Store (_, e) -> expr_scalar_uses [] e
        | Ir.Scatter { index; value; _ } ->
            expr_scalar_uses (expr_scalar_uses [] index) value
        | Ir.Reduce { rhs; _ } -> expr_scalar_uses [] rhs
      in
      List.iter note (List.rev uses))
    k.body;
  (match k.acc with
  | Some { scale_by = Some s; _ } -> note s
  | _ -> ());
  let names =
    List.stable_sort
      (fun a b -> compare (Hashtbl.find uses b) (Hashtbl.find uses a))
      (List.rev !order)
  in
  let reduction = Kernel.has_reduction k in
  let acc_reg = if reduction then Some (Reg.scalar_count - 1) else None in
  let partial_reg = if reduction then Some (Reg.scalar_count - 2) else None in
  let budget = Reg.scalar_count - (if reduction then 2 else 0) in
  let fits = List.length names <= budget in
  let avail = if fits then budget else budget - 1 in
  let kept = List.filteri (fun i _ -> i < avail) names in
  let spilled_names = List.filteri (fun i _ -> i >= avail) names in
  let spill_temp = if spilled_names = [] then None else Some avail in
  let map = List.mapi (fun i s -> (s, i)) kept in
  let spilled = List.mapi (fun i s -> (s, i)) spilled_names in
  let value s = List.assoc s k.scalars in
  let initial = List.map (fun (s, r) -> (r, value s)) map in
  { map; spilled; acc_reg; partial_reg; spill_temp; initial }

(* ------------------------------------------------------------------ *)
(* Vector code generation                                              *)
(* ------------------------------------------------------------------ *)

(* Reference key for the load cache.  Under Reload_shifted every distinct
   textual reference is its own key; under Stream_reuse all references of
   one reuse stream share the key of the stream's lowest-offset member. *)
let make_keyer (opt : Opt_level.t) (body : Ir.stmt list) =
  match opt.reuse with
  | Opt_level.Reload_shifted -> fun (r : Ir.ref_) -> r
  | Opt_level.Stream_reuse ->
      let refs = Ir.load_refs body in
      let cluster_rep = Hashtbl.create 16 in
      (* group refs by stream, clusters split on gaps wider than the reuse
         window (same rule as Ir.ma_load_count) *)
      let by_stream = Hashtbl.create 16 in
      List.iter
        (fun (r : Ir.ref_) ->
          let key =
            if r.scale = 0 then (r.array, 0, r.offset)
            else
              ( r.array,
                r.scale,
                ((r.offset mod r.scale) + abs r.scale) mod abs r.scale )
          in
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_stream key) in
          Hashtbl.replace by_stream key (r :: prev))
        refs;
      Hashtbl.iter
        (fun (_, scale, _) members ->
          let window = 8 * max 1 (abs scale) in
          let sorted =
            List.sort (fun (a : Ir.ref_) b -> compare a.offset b.offset) members
          in
          let rec go rep = function
            | [] -> ()
            | (r : Ir.ref_) :: rest ->
                let rep =
                  match rep with
                  | Some (p : Ir.ref_) when r.offset - p.offset <= window ->
                      Hashtbl.replace cluster_rep r (Hashtbl.find cluster_rep p);
                      Some r
                  | _ ->
                      Hashtbl.replace cluster_rep r r;
                      Some r
                in
                go rep rest
          in
          go None sorted)
        by_stream;
      fun r -> match Hashtbl.find_opt cluster_rep r with
        | Some rep -> rep
        | None -> r

type opnd = OV of int * bool (* vreg index, free after use *) | OS of int

type ctx = {
  opt : Opt_level.t;
  scal : scalar_plan;
  keyer : Ir.ref_ -> Ir.ref_;
  mutable out : Instr.t list; (* reversed *)
  mutable free : int list;
  ref_remaining : (Ir.ref_, int ref) Hashtbl.t;
  ref_reg : (Ir.ref_, int) Hashtbl.t;
  temp_info : (string, int * int ref) Hashtbl.t;
  mutable pinned : int list;
}

let emit ctx i = ctx.out <- i :: ctx.out

let mem_of (r : Ir.ref_) : Instr.mem =
  { array = r.array; offset = r.offset; stride = r.scale }

let alloc ctx =
  match ctx.free with
  | r :: rest ->
      ctx.free <- rest;
      r
  | [] -> (
      (* evict a cached, unpinned load: it can be rematerialised *)
      let victim =
        Hashtbl.fold
          (fun key reg acc ->
            match acc with
            | Some _ -> acc
            | None -> if List.mem reg ctx.pinned then None else Some (key, reg))
          ctx.ref_reg None
      in
      match victim with
      | Some (key, reg) ->
          Hashtbl.remove ctx.ref_reg key;
          reg
      | None ->
          raise
            (Register_pressure
               "more than eight live vector values with nothing to evict"))

(* FIFO discipline: rotate through the register file rather than reusing
   the register just freed.  Immediate reuse packs a chime's instructions
   onto one register pair and violates the two-read/one-write port limits,
   splitting chimes the hardware could have merged — the Convex compiler
   rotates registers exactly to avoid this. *)
let free_reg ctx r =
  if not (List.mem r ctx.free) then ctx.free <- ctx.free @ [ r ]

let free_opnd ctx = function
  | OV (r, true) -> free_reg ctx r
  | OV (_, false) | OS _ -> ()

let rec depth = function
  | Ir.Load _ -> 1
  | Ir.Scalar _ | Ir.Temp _ -> 0
  | Ir.Add (a, b) | Ir.Sub (a, b) | Ir.Mul (a, b) | Ir.Div (a, b) ->
      1 + max (depth a) (depth b)
  | Ir.Neg a | Ir.Sqrt a -> 1 + depth a
  | Ir.Gather { index; _ } -> 1 + depth index
  | Ir.Select { a; b; if_true; if_false; _ } ->
      1 + max (max (depth a) (depth b)) (max (depth if_true) (depth if_false))

let scalar_opnd ctx name =
  match List.assoc_opt name ctx.scal.map with
  | Some r -> OS r
  | None -> (
      match
        (List.assoc_opt name ctx.scal.spilled, ctx.scal.spill_temp)
      with
      | Some slot, Some temp ->
          emit ctx
            (Instr.Sld
               {
                 dst = Reg.s temp;
                 src = { array = scalar_pool_array; offset = slot; stride = 0 };
               });
          OS temp
      | _ ->
          invalid_arg (Printf.sprintf "Compiler: unallocated scalar %s" name))

let load_ref ctx (r : Ir.ref_) =
  let key = ctx.keyer r in
  let remaining =
    match Hashtbl.find_opt ctx.ref_remaining key with
    | Some c -> c
    | None -> invalid_arg "Compiler: load of uncounted reference"
  in
  match Hashtbl.find_opt ctx.ref_reg key with
  | Some reg ->
      decr remaining;
      if !remaining = 0 then begin
        Hashtbl.remove ctx.ref_reg key;
        OV (reg, true)
      end
      else OV (reg, false)
  | None ->
      let reg = alloc ctx in
      emit ctx (Instr.Vld { dst = Reg.v reg; src = mem_of key });
      decr remaining;
      if !remaining > 0 then begin
        Hashtbl.replace ctx.ref_reg key reg;
        OV (reg, false)
      end
      else OV (reg, true)

(* A [let] bound directly to a load must own its register: when the ref
   stays cached for later uses, load a private copy instead of aliasing
   the cache (whose owner frees the register on its own schedule).  The
   cache is never stale — stores invalidate it per array — so the reload
   reads the identical value. *)
let load_ref_owned ctx (r : Ir.ref_) =
  let key = ctx.keyer r in
  let remaining =
    match Hashtbl.find_opt ctx.ref_remaining key with
    | Some c -> c
    | None -> invalid_arg "Compiler: load of uncounted reference"
  in
  decr remaining;
  match Hashtbl.find_opt ctx.ref_reg key with
  | Some reg when !remaining = 0 ->
      Hashtbl.remove ctx.ref_reg key;
      OV (reg, true)
  | Some _ | None ->
      let reg = alloc ctx in
      emit ctx (Instr.Vld { dst = Reg.v reg; src = mem_of key });
      OV (reg, true)

let vsrc_of = function
  | OV (r, _) -> Instr.Vr (Reg.v r)
  | OS r -> Instr.Sr (Reg.s r)

let with_pin ctx opnd f =
  match opnd with
  | OV (r, _) ->
      ctx.pinned <- r :: ctx.pinned;
      let res = f () in
      ctx.pinned <- List.tl ctx.pinned;
      res
  | OS _ -> f ()

let rec gen ctx (e : Ir.expr) : opnd =
  match e with
  | Load r -> load_ref ctx r
  | Scalar s -> scalar_opnd ctx s
  | Temp name -> (
      match Hashtbl.find_opt ctx.temp_info name with
      | Some (reg, remaining) ->
          decr remaining;
          if !remaining = 0 then begin
            Hashtbl.remove ctx.temp_info name;
            OV (reg, true)
          end
          else OV (reg, false)
      | None -> invalid_arg (Printf.sprintf "Compiler: unbound temp %s" name))
  | Add (a, b) -> gen_bin ctx Instr.Add a b
  | Sub (a, b) -> gen_bin ctx Instr.Sub a b
  | Mul (a, b) -> gen_bin ctx Instr.Mul a b
  | Div (a, b) -> gen_bin ctx Instr.Div a b
  | Neg a -> (
      match gen ctx a with
      | OV (src, freeable) ->
          if freeable then free_reg ctx src;
          let dst = alloc ctx in
          emit ctx (Instr.Vneg { dst = Reg.v dst; src = Reg.v src });
          OV (dst, true)
      | OS _ -> invalid_arg "Compiler: negation of a scalar operand")
  | Sqrt a -> (
      match gen ctx a with
      | OV (src, freeable) ->
          if freeable then free_reg ctx src;
          let dst = alloc ctx in
          emit ctx (Instr.Vsqrt { dst = Reg.v dst; src = Reg.v src });
          OV (dst, true)
      | OS _ -> invalid_arg "Compiler: square root of a scalar operand")
  | Select { op; a; b; if_true; if_false } ->
      let cmp_op =
        match op with
        | Ir.CLt -> Instr.Lt
        | Ir.CLe -> Instr.Le
        | Ir.CEq -> Instr.Eq
        | Ir.CNe -> Instr.Ne
      in
      let oa = gen ctx a in
      let ob = with_pin ctx oa (fun () -> gen ctx b) in
      (match oa with
      | OV (src1, _) ->
          emit ctx (Instr.Vcmp { op = cmp_op; src1 = Reg.v src1; src2 = vsrc_of ob })
      | OS _ -> invalid_arg "Compiler: select condition must compare a vector");
      free_opnd ctx oa;
      free_opnd ctx ob;
      let ot = gen ctx if_true in
      let of_ = with_pin ctx ot (fun () -> gen ctx if_false) in
      free_opnd ctx ot;
      free_opnd ctx of_;
      let dst = alloc ctx in
      emit ctx
        (Instr.Vmerge
           { dst = Reg.v dst; src_true = vsrc_of ot; src_false = vsrc_of of_ });
      OV (dst, true)
  | Gather { array; offset; index } -> (
      match gen ctx index with
      | OV (ix, freeable) ->
          if freeable then free_reg ctx ix;
          let dst = alloc ctx in
          emit ctx
            (Instr.Vgather
               {
                 dst = Reg.v dst;
                 base = { array; offset; stride = 1 };
                 index = Reg.v ix;
               });
          OV (dst, true)
      | OS _ -> invalid_arg "Compiler: scalar gather index")

and gen_bin ctx op a b =
  let oa, ob =
    if depth b > depth a then
      let ob = gen ctx b in
      let oa = with_pin ctx ob (fun () -> gen ctx a) in
      (oa, ob)
    else
      let oa = gen ctx a in
      let ob = with_pin ctx oa (fun () -> gen ctx b) in
      (oa, ob)
  in
  free_opnd ctx oa;
  free_opnd ctx ob;
  let dst = alloc ctx in
  emit ctx (Instr.Vbin { op; dst = Reg.v dst; src1 = vsrc_of oa; src2 = vsrc_of ob });
  OV (dst, true)

(* count per-iteration uses of every reference key and temp *)
let count_uses keyer (body : Ir.stmt list) =
  let refs = Hashtbl.create 16 and temps = Hashtbl.create 16 in
  let bump tbl k =
    Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  let rec walk = function
    | Ir.Load r -> bump refs (keyer r)
    | Ir.Scalar _ -> ()
    | Ir.Temp t -> bump temps t
    | Ir.Add (a, b) | Ir.Sub (a, b) | Ir.Mul (a, b) | Ir.Div (a, b) ->
        walk a;
        walk b
    | Ir.Neg a | Ir.Sqrt a -> walk a
    | Ir.Gather { index; _ } -> walk index
    | Ir.Select { a; b; if_true; if_false; _ } ->
        walk a;
        walk b;
        walk if_true;
        walk if_false
  in
  List.iter
    (function
      | Ir.Let (_, e) | Ir.Store (_, e) -> walk e
      | Ir.Scatter { index; value; _ } ->
          walk index;
          walk value
      | Ir.Reduce { rhs; _ } -> walk rhs)
    body;
  (refs, temps)

let rec new_refs_of_expr ctx acc = function
  | Ir.Load r ->
      let key = ctx.keyer r in
      if Hashtbl.mem ctx.ref_reg key || List.exists (Ir.equal_ref_ key) acc
      then acc
      else key :: acc
  | Ir.Scalar _ | Ir.Temp _ -> acc
  | Ir.Add (a, b) | Ir.Sub (a, b) | Ir.Mul (a, b) | Ir.Div (a, b) ->
      new_refs_of_expr ctx (new_refs_of_expr ctx acc a) b
  | Ir.Neg a | Ir.Sqrt a -> new_refs_of_expr ctx acc a
  | Ir.Gather { index; _ } -> new_refs_of_expr ctx acc index
  | Ir.Select { a; b; if_true; if_false; _ } ->
      new_refs_of_expr ctx
        (new_refs_of_expr ctx
           (new_refs_of_expr ctx (new_refs_of_expr ctx acc a) b)
           if_true)
        if_false

(* Loads_first: hoist a statement's fresh loads ahead of its arithmetic,
   while register pressure allows *)
let hoist_loads ctx e =
  let fresh = List.rev (new_refs_of_expr ctx [] e) in
  List.iter
    (fun key ->
      if List.length ctx.free > 2 && not (Hashtbl.mem ctx.ref_reg key) then begin
        let reg = alloc ctx in
        emit ctx (Instr.Vld { dst = Reg.v reg; src = mem_of key });
        Hashtbl.replace ctx.ref_reg key reg
      end)
    fresh

let gen_stmt ctx plan stmt =
  let prepare e =
    if ctx.opt.Opt_level.schedule = Opt_level.Loads_first then
      hoist_loads ctx e
  in
  match stmt with
  | Ir.Let (name, e) -> (
      prepare e;
      let o =
        match e with Ir.Load r -> load_ref_owned ctx r | _ -> gen ctx e
      in
      match o with
      | OV (reg, freeable) ->
          if not freeable then
            invalid_arg
              (Printf.sprintf
                 "Compiler: temp %s aliases a shared register" name);
          let uses =
            match Hashtbl.find_opt (snd plan) name with
            | Some n -> n
            | None -> 0
          in
          if uses = 0 then free_reg ctx reg
          else Hashtbl.replace ctx.temp_info name (reg, ref uses)
      | OS _ -> invalid_arg "Compiler: scalar-valued temp")
  | Ir.Store (r, e) -> (
      prepare e;
      match gen ctx e with
      | OV (reg, freeable) ->
          emit ctx (Instr.Vst { src = Reg.v reg; dst = mem_of r });
          if freeable then free_reg ctx reg;
          (* storing may invalidate cached loads of the same array *)
          let stale =
            Hashtbl.fold
              (fun (key : Ir.ref_) _ acc ->
                if String.equal key.array r.array then key :: acc else acc)
              ctx.ref_reg []
          in
          List.iter
            (fun key ->
              let reg = Hashtbl.find ctx.ref_reg key in
              Hashtbl.remove ctx.ref_reg key;
              ignore reg
              (* the value keeps its register until its uses run out; we
                 only stop treating it as a valid copy of memory for
                 future loads — precise enough for the kernels at hand,
                 where no reference is read again after an overlapping
                 store *))
            stale
      | OS _ -> invalid_arg "Compiler: scalar-valued store")
  | Ir.Scatter { array; offset; index; value } -> (
      prepare value;
      let ov = gen ctx value in
      let oi = with_pin ctx ov (fun () -> gen ctx index) in
      match (ov, oi) with
      | OV (src, f1), OV (ix, f2) ->
          emit ctx
            (Instr.Vscatter
               {
                 src = Reg.v src;
                 base = { array; offset; stride = 1 };
                 index = Reg.v ix;
               });
          if f1 then free_reg ctx src;
          if f2 then free_reg ctx ix
      | _ -> invalid_arg "Compiler: scalar operand in scatter")
  | Ir.Reduce { neg; rhs } -> (
      prepare rhs;
      let partial = Option.get ctx.scal.partial_reg
      and acc = Option.get ctx.scal.acc_reg in
      match gen ctx rhs with
      | OV (reg, freeable) ->
          emit ctx (Instr.Vsum { dst = Reg.s partial; src = Reg.v reg });
          if freeable then free_reg ctx reg;
          emit ctx
            (Instr.Sbin
               {
                 op = (if neg then Instr.Sub else Instr.Add);
                 dst = Reg.s acc;
                 src1 = Reg.s acc;
                 src2 = Reg.s partial;
               })
      | OS _ -> invalid_arg "Compiler: scalar-valued reduction")

(* Oops: gen_stmt Store keeps the register reserved if the value was a
   cached load whose uses were not exhausted; that path frees through the
   normal refcounting when remaining uses are consumed. *)

(* Copy propagation: a [let] whose right-hand side is a bare temp or
   scalar binds no new value, only a new name for a register some other
   owner frees — lowering it directly would alias a shared register.
   Substitute such bindings into their uses and drop them (rebinding is
   rejected by [Ir.validate], so substitution cannot capture). *)
let copy_propagate (body : Ir.stmt list) =
  let env = Hashtbl.create 4 in
  let rec subst (e : Ir.expr) : Ir.expr =
    match e with
    | Ir.Temp n -> (
        match Hashtbl.find_opt env n with Some e' -> e' | None -> e)
    | Ir.Load _ | Ir.Scalar _ -> e
    | Ir.Add (a, b) -> Ir.Add (subst a, subst b)
    | Ir.Sub (a, b) -> Ir.Sub (subst a, subst b)
    | Ir.Mul (a, b) -> Ir.Mul (subst a, subst b)
    | Ir.Div (a, b) -> Ir.Div (subst a, subst b)
    | Ir.Neg a -> Ir.Neg (subst a)
    | Ir.Sqrt a -> Ir.Sqrt (subst a)
    | Ir.Gather g -> Ir.Gather { g with index = subst g.index }
    | Ir.Select s ->
        Ir.Select
          {
            s with
            a = subst s.a;
            b = subst s.b;
            if_true = subst s.if_true;
            if_false = subst s.if_false;
          }
  in
  List.filter_map
    (fun stmt ->
      match stmt with
      | Ir.Let (name, e) -> (
          match subst e with
          | (Ir.Temp _ | Ir.Scalar _) as alias ->
              Hashtbl.replace env name alias;
              None
          | e' -> Some (Ir.Let (name, e')))
      | Ir.Store (r, e) -> Some (Ir.Store (r, subst e))
      | Ir.Scatter s ->
          Some
            (Ir.Scatter { s with index = subst s.index; value = subst s.value })
      | Ir.Reduce r -> Some (Ir.Reduce { r with rhs = subst r.rhs }))
    body

let lower_body (opt : Opt_level.t) scal (k : Kernel.t) =
  let keyer = make_keyer opt k.body in
  let refs, temps = count_uses keyer k.body in
  let ctx =
    {
      opt;
      scal;
      keyer;
      out = [];
      free = List.init Reg.vector_count Fun.id;
      ref_remaining = Hashtbl.create 16;
      ref_reg = Hashtbl.create 16;
      temp_info = Hashtbl.create 16;
      pinned = [];
    }
  in
  Hashtbl.iter (fun key n -> Hashtbl.add ctx.ref_remaining key (ref n)) refs;
  List.iter (fun stmt -> gen_stmt ctx (refs, temps) stmt) k.body;
  List.rev ctx.out

(* ------------------------------------------------------------------ *)
(* Scalar code generation (non-vectorizable loops, C-240 scalar mode)  *)
(* ------------------------------------------------------------------ *)

type sctx = {
  s_scal : scalar_plan;
  mutable s_out : Instr.t list; (* reversed *)
  mutable s_free : int list;
  s_temp : (string, int * int ref) Hashtbl.t;
}

let semit ctx i = ctx.s_out <- i :: ctx.s_out

let salloc ctx =
  match ctx.s_free with
  | r :: rest ->
      ctx.s_free <- rest;
      r
  | [] ->
      raise (Register_pressure "scalar registers exhausted in scalar mode")

let sfree ctx r =
  if not (List.mem r ctx.s_free) then ctx.s_free <- ctx.s_free @ [ r ]

let sfree_opnd ctx (r, freeable) = if freeable then sfree ctx r

(* returns (scalar register, free after use) *)
let rec gen_scalar ctx (e : Ir.expr) : int * bool =
  match e with
  | Load r ->
      let dst = salloc ctx in
      semit ctx (Instr.Sld { dst = Reg.s dst; src = mem_of r });
      (dst, true)
  | Scalar name -> (
      match List.assoc_opt name ctx.s_scal.map with
      | Some r -> (r, false)
      | None -> (
          match
            (List.assoc_opt name ctx.s_scal.spilled, ctx.s_scal.spill_temp)
          with
          | Some slot, Some temp ->
              semit ctx
                (Instr.Sld
                   {
                     dst = Reg.s temp;
                     src =
                       { array = scalar_pool_array; offset = slot; stride = 0 };
                   });
              (temp, false)
          | _ ->
              invalid_arg
                (Printf.sprintf "Compiler: unallocated scalar %s" name)))
  | Temp name -> (
      match Hashtbl.find_opt ctx.s_temp name with
      | Some (reg, remaining) ->
          decr remaining;
          if !remaining = 0 then begin
            Hashtbl.remove ctx.s_temp name;
            (reg, true)
          end
          else (reg, false)
      | None -> invalid_arg (Printf.sprintf "Compiler: unbound temp %s" name))
  | Add (a, b) -> gen_scalar_bin ctx Instr.Add a b
  | Sub (a, b) -> gen_scalar_bin ctx Instr.Sub a b
  | Mul (a, b) -> gen_scalar_bin ctx Instr.Mul a b
  | Div (a, b) -> gen_scalar_bin ctx Instr.Div a b
  | Sqrt _ ->
      invalid_arg
        "Compiler: no scalar square-root instruction; this loop cannot \
         run in scalar mode"
  | Gather _ ->
      invalid_arg
        "Compiler: indexed access is not supported in scalar mode"
  | Select _ ->
      invalid_arg
        "Compiler: element-wise select is not supported in scalar mode"
  | Neg a ->
      (* no scalar negate instruction: 0 - a, with the zero materialised
         by subtracting a scratch register from itself *)
      let oa = gen_scalar ctx a in
      let zero = salloc ctx in
      semit ctx
        (Instr.Sbin
           { op = Instr.Sub; dst = Reg.s zero; src1 = Reg.s zero;
             src2 = Reg.s zero });
      sfree_opnd ctx oa;
      let dst = salloc ctx in
      semit ctx
        (Instr.Sbin
           { op = Instr.Sub; dst = Reg.s dst; src1 = Reg.s zero;
             src2 = Reg.s (fst oa) });
      sfree ctx zero;
      (dst, true)

and gen_scalar_bin ctx op a b =
  let oa, ob =
    if depth b > depth a then
      let ob = gen_scalar ctx b in
      let oa = gen_scalar ctx a in
      (oa, ob)
    else
      let oa = gen_scalar ctx a in
      let ob = gen_scalar ctx b in
      (oa, ob)
  in
  sfree_opnd ctx oa;
  sfree_opnd ctx ob;
  let dst = salloc ctx in
  semit ctx
    (Instr.Sbin
       { op; dst = Reg.s dst; src1 = Reg.s (fst oa); src2 = Reg.s (fst ob) });
  (dst, true)

let lower_scalar_body scal (k : Kernel.t) =
  let reserved =
    List.map snd scal.map
    @ List.filter_map Fun.id [ scal.acc_reg; scal.partial_reg; scal.spill_temp ]
  in
  let ctx =
    {
      s_scal = scal;
      s_out = [];
      s_free =
        List.filter
          (fun r -> not (List.mem r reserved))
          (List.init Reg.scalar_count Fun.id);
      s_temp = Hashtbl.create 8;
    }
  in
  let temp_uses = Hashtbl.create 8 in
  let rec count_temps = function
    | Ir.Temp t ->
        Hashtbl.replace temp_uses t
          (1 + Option.value ~default:0 (Hashtbl.find_opt temp_uses t))
    | Ir.Load _ | Ir.Scalar _ -> ()
    | Ir.Add (a, b) | Ir.Sub (a, b) | Ir.Mul (a, b) | Ir.Div (a, b) ->
        count_temps a;
        count_temps b
    | Ir.Neg a | Ir.Sqrt a -> count_temps a
    | Ir.Gather { index; _ } -> count_temps index
    | Ir.Select { a; b; if_true; if_false; _ } ->
        count_temps a;
        count_temps b;
        count_temps if_true;
        count_temps if_false
  in
  List.iter
    (function
      | Ir.Let (_, e) | Ir.Store (_, e) -> count_temps e
      | Ir.Scatter { index; value; _ } ->
          count_temps index;
          count_temps value
      | Ir.Reduce { rhs; _ } -> count_temps rhs)
    k.body;
  List.iter
    (fun stmt ->
      match stmt with
      | Ir.Let (name, e) ->
          let reg, freeable = gen_scalar ctx e in
          if not freeable then
            invalid_arg
              (Printf.sprintf "Compiler: temp %s aliases a shared register"
                 name);
          let uses =
            Option.value ~default:0 (Hashtbl.find_opt temp_uses name)
          in
          if uses = 0 then sfree ctx reg
          else Hashtbl.replace ctx.s_temp name (reg, ref uses)
      | Ir.Store (r, e) ->
          let o = gen_scalar ctx e in
          semit ctx (Instr.Sst { src = Reg.s (fst o); dst = mem_of r });
          sfree_opnd ctx o
      | Ir.Scatter _ ->
          invalid_arg
            "Compiler: indexed access is not supported in scalar mode"
      | Ir.Reduce { neg; rhs } ->
          let acc =
            match scal.acc_reg with
            | Some r -> r
            | None -> invalid_arg "Compiler: reduction without accumulator"
          in
          let o = gen_scalar ctx rhs in
          semit ctx
            (Instr.Sbin
               {
                 op = (if neg then Instr.Sub else Instr.Add);
                 dst = Reg.s acc;
                 src1 = Reg.s acc;
                 src2 = Reg.s (fst o);
               });
          sfree_opnd ctx o)
    k.body;
  List.rev ctx.s_out

(* ------------------------------------------------------------------ *)
(* Segment prologue / epilogue (reduction protocol)                    *)
(* ------------------------------------------------------------------ *)

let acc_prologue scal (k : Kernel.t) =
  match (k.acc, scal.acc_reg) with
  | None, _ | _, None -> []
  | Some spec, Some acc -> (
      match spec.init with
      | Kernel.Zero ->
          [ Instr.Sbin { op = Instr.Sub; dst = Reg.s acc; src1 = Reg.s acc;
                         src2 = Reg.s acc } ]
      | Kernel.Load_from r -> [ Instr.Sld { dst = Reg.s acc; src = mem_of r } ])

let acc_epilogue scal (k : Kernel.t) =
  match (k.acc, scal.acc_reg) with
  | None, _ | _, None -> []
  | Some spec, Some acc ->
      let scale =
        match spec.scale_by with
        | None -> []
        | Some name -> (
            match List.assoc_opt name scal.map with
            | Some r ->
                [ Instr.Sbin { op = Instr.Mul; dst = Reg.s acc;
                               src1 = Reg.s acc; src2 = Reg.s r } ]
            | None -> invalid_arg "Compiler: scale_by scalar not in registers")
      in
      let store =
        match spec.store_to with
        | None -> []
        | Some r -> [ Instr.Sst { src = Reg.s acc; dst = mem_of r } ]
      in
      scale @ store

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let loop_tail =
  [
    Instr.Sop { name = "add.a" };
    Instr.Sop { name = "add.s" };
    Instr.Sop { name = "lt.s" };
    Instr.Sbranch;
  ]

let compile ?(opt = Opt_level.v61) ?(force_scalar = false) (k : Kernel.t) =
  (match Kernel.validate k with
  | Ok () -> ()
  | Error e ->
      invalid_arg (Printf.sprintf "Compiler.compile: invalid kernel %s: %s"
                     k.name e));
  let scal = plan_scalars k in
  let verdict = Vectorizer.analyze k in
  let mode =
    if force_scalar || verdict <> Vectorizer.Vectorizable then Job.Scalar
    else Job.Vector
  in
  let nk = { k with Kernel.body = copy_propagate k.body } in
  let body, name =
    match mode with
    | Job.Vector ->
        let lowered = lower_body opt scal nk in
        let lowered =
          match opt.Opt_level.schedule with
          | Opt_level.Packed -> (
              (* an unpackable body (cyclic dependence graph, scheduler
                 no-progress) compiles in lowering order rather than
                 aborting the whole kernel *)
              match
                Schedule.pack ~machine:Convex_machine.Machine.c240 lowered
              with
              | Ok packed -> packed
              | Error _ -> lowered)
          | Opt_level.Depth_first | Opt_level.Loads_first -> lowered
        in
        ( (Instr.Smovvl :: lowered) @ loop_tail,
          Printf.sprintf "%s.%s" k.name (Opt_level.name opt) )
    | Job.Scalar -> (lower_scalar_body scal nk @ loop_tail, k.name ^ ".scalar")
  in
  let program = Program.make ~name body in
  let outer =
    List.init k.outer_ops (fun _ -> Instr.Sop { name = "outer" })
  in
  let prologue = outer @ acc_prologue scal k in
  let epilogue = acc_epilogue scal k in
  let segments =
    List.map
      (fun (s : Kernel.segment_spec) ->
        Job.segment ~base:s.base ~shifts:s.shifts ~prologue ~epilogue s.length)
      k.segments
  in
  let job = Job.make ~mode ~name ~body ~segments () in
  {
    kernel = k;
    opt;
    mode;
    verdict;
    program;
    job;
    sregs = scal.initial;
    flops_per_iteration = Ir.flops k.body;
    scalar_map = scal.map;
    spilled_scalars = List.map fst scal.spilled;
  }

let initial_store (c : t) =
  let base = Lfk.Data.store_of c.kernel in
  let existing =
    List.map (fun name -> (name, Store.get base name)) (Store.arrays base)
  in
  let pool =
    if c.spilled_scalars = [] then []
    else
      [
        ( scalar_pool_array,
          Array.of_list
            (List.map (fun s -> List.assoc s c.kernel.scalars)
               c.spilled_scalars) );
      ]
  in
  Store.create (existing @ pool)

let initial_sregs c = c.sregs

let run_interp (c : t) =
  if not (Opt_level.functional c.opt) then
    invalid_arg "Compiler.run_interp: optimization level is not functional";
  let store = initial_store c in
  let sregs = List.map (fun (i, v) -> (i, v)) c.sregs in
  let (_ : float array) = Interp.run_exn ~sregs ~store c.job in
  store

let listing (c : t) = Asm.print_program c.program
