open Convex_isa
open Convex_machine
open Macs_util

(* ------------------------------------------------------------------ *)
(* The compiler's model of the chime rules (mirrors the hardware rules
   the Macs library also models; duplicated here because the analysis
   library sits above the compiler in the dependency order, exactly as a
   real compiler carries its own machine model)                         *)
(* ------------------------------------------------------------------ *)

type chime_state = {
  mutable members : Instr.t list;
  mutable barrier : bool;  (* scalar memory seen since the chime opened *)
}

let fresh_chime () = { members = []; barrier = false }

let fits ~machine st i =
  match Pipe.of_instr i with
  | None -> true (* scalar instructions live outside chimes *)
  | Some pipe ->
      let on_pipe =
        List.length
          (List.filter (fun m -> Pipe.of_instr m = Some pipe) st.members)
      in
      if on_pipe >= Machine.pipe_count machine pipe then false
      else if st.barrier && Instr.is_vector_memory i then false
      else
        let group = i :: st.members in
        let count f pid =
          List.fold_left
            (fun acc m ->
              acc
              + List.length (List.filter (fun r -> Reg.pair_id r = pid) (f m)))
            0 group
        in
        List.for_all
          (fun pid ->
            count Instr.reads_v pid <= machine.Machine.pair_read_limit
            && count Instr.writes_v pid <= machine.Machine.pair_write_limit)
          (List.init Reg.pair_count Fun.id)

let place ~machine st i =
  if Instr.is_scalar i then begin
    if Instr.is_scalar_memory i then
      if List.exists Instr.is_vector_memory st.members then begin
        (* closes the chime *)
        st.members <- [];
        st.barrier <- false;
        true
      end
      else begin
        st.barrier <- true;
        false
      end
    else false
  end
  else if fits ~machine st i then begin
    st.members <- i :: st.members;
    false
  end
  else begin
    st.members <- [ i ];
    st.barrier <- false;
    true (* opened a new chime *)
  end

let chime_count ~machine instrs =
  let st = fresh_chime () in
  let opened = ref 0 in
  List.iter
    (fun i ->
      let closed = place ~machine st i in
      ignore closed;
      (* count chime openings: a vector instruction landing in an empty
         chime state opens one *)
      if Instr.is_vector i && List.length st.members = 1 then incr opened)
    instrs;
  !opened

(* ------------------------------------------------------------------ *)
(* Dependence graph                                                     *)
(* ------------------------------------------------------------------ *)

let build_deps instrs =
  let arr = Array.of_list instrs in
  let n = Array.length arr in
  let preds = Array.make n [] in
  let add_edge i j = if i <> j then preds.(j) <- i :: preds.(j) in
  (* last writer / readers-since per vector and scalar register *)
  let vwriter = Array.make Reg.vector_count (-1) in
  let vreaders = Array.make Reg.vector_count [] in
  let swriter = Array.make Reg.scalar_count (-1) in
  let sreaders = Array.make Reg.scalar_count [] in
  (* the vector-merge mask: Vcmp writes it, Vmerge reads it — an implicit
     register the pipe model has no name for, but reordering across it is
     a miscompile *)
  let mask_writer = ref (-1) in
  let mask_readers = ref [] in
  (* last memory op per array touching it with a store involved *)
  let last_store : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let loads_since : (string, int list) Hashtbl.t = Hashtbl.create 8 in
  for j = 0 to n - 1 do
    let i = arr.(j) in
    List.iter
      (fun r ->
        let x = Reg.v_index r in
        if vwriter.(x) >= 0 then add_edge vwriter.(x) j;
        vreaders.(x) <- j :: vreaders.(x))
      (Instr.reads_v i);
    List.iter
      (fun r ->
        let x = Reg.v_index r in
        if vwriter.(x) >= 0 then add_edge vwriter.(x) j;
        List.iter (fun r' -> add_edge r' j) vreaders.(x);
        vwriter.(x) <- j;
        vreaders.(x) <- [])
      (Instr.writes_v i);
    List.iter
      (fun r ->
        let x = Reg.s_index r in
        if swriter.(x) >= 0 then add_edge swriter.(x) j;
        sreaders.(x) <- j :: sreaders.(x))
      (Instr.reads_s i);
    List.iter
      (fun r ->
        let x = Reg.s_index r in
        if swriter.(x) >= 0 then add_edge swriter.(x) j;
        List.iter (fun r' -> add_edge r' j) sreaders.(x);
        swriter.(x) <- j;
        sreaders.(x) <- [])
      (Instr.writes_s i);
    (match i with
    | Instr.Vcmp _ ->
        if !mask_writer >= 0 then add_edge !mask_writer j;
        List.iter (fun r -> add_edge r j) !mask_readers;
        mask_writer := j;
        mask_readers := []
    | Instr.Vmerge _ ->
        if !mask_writer >= 0 then add_edge !mask_writer j;
        mask_readers := j :: !mask_readers
    | _ -> ());
    (match Instr.mem_ref i with
    | Some m ->
        let is_store =
          match i with Instr.Vst _ | Instr.Sst _ -> true | _ -> false
        in
        if is_store then begin
          (match Hashtbl.find_opt last_store m.array with
          | Some p -> add_edge p j
          | None -> ());
          List.iter (fun p -> add_edge p j)
            (Option.value ~default:[] (Hashtbl.find_opt loads_since m.array));
          Hashtbl.replace last_store m.array j;
          Hashtbl.replace loads_since m.array []
        end
        else begin
          (match Hashtbl.find_opt last_store m.array with
          | Some p -> add_edge p j
          | None -> ());
          Hashtbl.replace loads_since m.array
            (j :: Option.value ~default:[] (Hashtbl.find_opt loads_since m.array))
        end
    | None -> ());
    (* loop-control scalars (Sop/Smovvl/Sbranch) keep their order among
       themselves and stay after everything when they trail the body *)
    match i with
    | Instr.Sop _ | Instr.Smovvl | Instr.Sbranch ->
        for p = 0 to j - 1 do
          match arr.(p) with
          | Instr.Sop _ | Instr.Smovvl | Instr.Sbranch -> add_edge p j
          | _ -> ()
        done
    | _ -> ()
  done;
  (arr, preds)

(* ------------------------------------------------------------------ *)
(* Greedy list scheduling                                               *)
(* ------------------------------------------------------------------ *)

let pack ~machine instrs =
  let arr, preds = build_deps instrs in
  let n = Array.length arr in
  if n = 0 then Ok []
  else begin
    let pending = Array.make n 0 in
    Array.iteri
      (fun j ps ->
        pending.(j) <- List.length (List.sort_uniq compare ps))
      preds;
    let succs = Array.make n [] in
    Array.iteri
      (fun j ps ->
        List.iter (fun p -> succs.(p) <- j :: succs.(p))
          (List.sort_uniq compare ps))
      preds;
    let scheduled = Array.make n false in
    let out = ref [] in
    let st = fresh_chime () in
    let ready () =
      let r = ref [] in
      for j = n - 1 downto 0 do
        if (not scheduled.(j)) && pending.(j) = 0 then r := j :: !r
      done;
      !r
    in
    let emit j =
      scheduled.(j) <- true;
      ignore (place ~machine st arr.(j));
      List.iter (fun s -> pending.(s) <- pending.(s) - 1) succs.(j);
      out := arr.(j) :: !out
    in
    let scheduled_count () =
      Array.fold_left (fun acc s -> if s then acc + 1 else acc) 0 scheduled
    in
    let steps = ref 0 in
    let error = ref None in
    while
      !error = None
      && List.exists (fun s -> not s) (Array.to_list scheduled)
    do
      incr steps;
      if !steps > n * (n + 2) then
        error :=
          Some
            (Macs_error.livelock ~site:"Schedule.pack" ~cycle:!steps
               ~pending:(n - scheduled_count ()) ())
      else
        let candidates = ready () in
        match candidates with
        | [] ->
            (* every unscheduled instruction still waits on a predecessor:
               the dependence graph has a cycle *)
            error :=
              Some
                (Macs_error.dependence_cycle ~site:"Schedule.pack"
                   ~scheduled:(scheduled_count ()) ~total:n)
        | _ ->
            (* prefer the first (original order) candidate that fits the
               open chime without closing it; otherwise take the first
               candidate outright *)
            let fitting =
              List.find_opt
                (fun j ->
                  Instr.is_vector arr.(j) && fits ~machine st arr.(j)
                  && st.members <> [])
                candidates
            in
            let choice =
              match fitting with Some j -> j | None -> List.hd candidates
            in
            emit choice
    done;
    match !error with
    | Some e -> Error e
    | None ->
        (* greedy list scheduling is not monotone: on rare dependence
           shapes the packed order opens more chimes than the lowering
           order it started from.  Keep the input order in that case, so
           "packing never adds chimes" holds by construction (the bound
           oracle checks it). *)
        let packed = List.rev !out in
        if chime_count ~machine packed > chime_count ~machine instrs then
          Ok instrs
        else Ok packed
  end

let pack_exn ~machine instrs = Macs_error.of_result (pack ~machine instrs)
