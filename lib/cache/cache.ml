(* Crash-consistent content-addressed result store.

   An entry is keyed by the MD5 of a canonical journal-encoded record of
   everything that determines the result (kernel spec, machine, fault
   plan, harness config, cache format version) and lives at
   [objects/<k0k1>/<key>].  The file is self-verifying: a header line
   carrying the format version, its own key, the payload length and the
   payload MD5, followed by the raw payload bytes.  Publication is
   two-phase — write a private tmp file, fsync, rename into place, fsync
   the directory — so a reader can never observe a torn entry under the
   final name.  Any entry that fails verification (truncated, bit-flipped,
   wrong key) is moved to [quarantine/] and reported as a miss: the cache
   may lose work, never invent it. *)

module Journal = Macs_util.Journal
module Sink = Macs_util.Sink

let format_version = 1
let entry_tag = "macs-cache-entry"
let log_format = "macs-cache-log"

type t = {
  dir : string;
  hits : int Atomic.t;
  misses : int Atomic.t;
  stores : int Atomic.t;
  quarantined : int Atomic.t;
}

type counters = { hits : int; misses : int; stores : int; quarantined : int }

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let objects_dir t = Filename.concat t.dir "objects"
let quarantine_dir t = Filename.concat t.dir "quarantine"
let log_path t = Filename.concat t.dir "cache.log"

let open_dir dir =
  let t =
    {
      dir;
      hits = Atomic.make 0;
      misses = Atomic.make 0;
      stores = Atomic.make 0;
      quarantined = Atomic.make 0;
    }
  in
  mkdir_p (objects_dir t);
  mkdir_p (quarantine_dir t);
  t

let counters (t : t) =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    stores = Atomic.get t.stores;
    quarantined = Atomic.get t.quarantined;
  }

let reset_counters (t : t) =
  Atomic.set t.hits 0;
  Atomic.set t.misses 0;
  Atomic.set t.stores 0;
  Atomic.set t.quarantined 0

(* ---- keys ---- *)

let key ~kind parts =
  let r =
    {
      Journal.tag = "cache-key";
      fields =
        ("kind", kind)
        :: ("cache-version", string_of_int format_version)
        :: parts;
    }
  in
  Digest.to_hex (Digest.string (Journal.encode r))

let entry_path t key =
  Filename.concat
    (Filename.concat (objects_dir t) (String.sub key 0 2))
    key

(* ---- entry codec ---- *)

let entry_header ~key payload =
  {
    Journal.tag = entry_tag;
    fields =
      [
        ("version", string_of_int format_version);
        ("key", key);
        ("len", string_of_int (String.length payload));
        ("md5", Digest.to_hex (Digest.string payload));
      ];
  }

(* [Error reason] on any integrity failure; the caller quarantines. *)
let parse_entry ~key s =
  let ( let* ) = Result.bind in
  match String.index_opt s '\n' with
  | None -> Error "no complete header line"
  | Some nl -> (
      match Journal.decode (String.sub s 0 nl) with
      | Error e -> Error ("undecodable header: " ^ e)
      | Ok r ->
          if r.Journal.tag <> entry_tag then
            Error (Printf.sprintf "wrong header tag %S" r.Journal.tag)
          else
            let* v = Journal.field_err r "version" in
            let* k = Journal.field_err r "key" in
            let* len = Journal.field_err r "len" in
            let* md5 = Journal.field_err r "md5" in
            if v <> string_of_int format_version then
              Error (Printf.sprintf "version %s, want %d" v format_version)
            else if k <> key then
              Error (Printf.sprintf "key mismatch: entry claims %s" k)
            else
              let payload =
                String.sub s (nl + 1) (String.length s - nl - 1)
              in
              if Some (String.length payload) <> int_of_string_opt len then
                Error
                  (Printf.sprintf "length mismatch: header %s, actual %d" len
                     (String.length payload))
              else if Digest.to_hex (Digest.string payload) <> md5 then
                Error "payload checksum mismatch"
              else Ok payload)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---- quarantine ---- *)

let quarantine_move (t : t) ~key path =
  let rec free n =
    let q = Filename.concat (quarantine_dir t) (Printf.sprintf "%s.%d" key n) in
    if Sys.file_exists q then free (n + 1) else q
  in
  (try Sys.rename path (free 0) with Sys_error _ -> ());
  Atomic.incr t.quarantined

(* ---- store / find ---- *)

let store (t : t) ~key payload =
  let path = entry_path t key in
  if Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    (* tmp name is private to this domain so concurrent stores of the
       same (deterministic) entry cannot interleave *)
    let tmp =
      Printf.sprintf "%s.tmp.%d" path (Domain.self () :> int)
    in
    let bytes = Journal.encode (entry_header ~key payload) ^ "\n" ^ payload in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Sink.write oc ~site:("cache-store:" ^ key) bytes;
        Sink.fsync_out oc);
    Sink.rename ~site:("cache-publish:" ^ key) tmp path;
    Sink.fsync_dir (Filename.dirname path);
    Atomic.incr t.stores
  end

let find (t : t) ~key =
  let path = entry_path t key in
  if not (Sys.file_exists path) then begin
    Atomic.incr t.misses;
    None
  end
  else
    match parse_entry ~key (read_file path) with
    | Ok payload ->
        Atomic.incr t.hits;
        Some payload
    | Error _reason ->
        quarantine_move t ~key path;
        Atomic.incr t.misses;
        None

(* ---- per-run counter log ---- *)

let log_run t ~label =
  let c = counters t in
  let path = log_path t in
  if Journal.is_fresh ~path ~format:log_format then
    Journal.create ~path ~format:log_format []
  else
    (* a crashed writer may have left a torn tail; truncate it so this
       append starts a fresh record (best-effort — the log is advisory) *)
    ignore (Journal.repair ~path ~format:log_format);
  Journal.append ~path
    {
      Journal.tag = "run";
      fields =
        [
          ("label", label);
          ("hits", string_of_int c.hits);
          ("misses", string_of_int c.misses);
          ("stores", string_of_int c.stores);
          ("quarantined", string_of_int c.quarantined);
        ];
    }

let pp_counters ppf c =
  Format.fprintf ppf "cache: %d hit%s, %d miss%s, %d stored, %d quarantined"
    c.hits
    (if c.hits = 1 then "" else "s")
    c.misses
    (if c.misses = 1 then "" else "es")
    c.stores c.quarantined

let counters_json c =
  Printf.sprintf
    "{\"cache\":{\"hits\":%d,\"misses\":%d,\"stores\":%d,\"quarantined\":%d}}"
    c.hits c.misses c.stores c.quarantined

(* ---- maintenance: stat / verify / gc ---- *)

let list_entries t =
  let objects = objects_dir t in
  match Sys.readdir objects with
  | exception Sys_error _ -> []
  | fans ->
      Array.to_list fans
      |> List.sort compare
      |> List.concat_map (fun fan ->
             let fan_dir = Filename.concat objects fan in
             if not (Sys.is_directory fan_dir) then []
             else
               match Sys.readdir fan_dir with
               | exception Sys_error _ -> []
               | names ->
                   Array.to_list names |> List.sort compare
                   |> List.filter_map (fun name ->
                          (* skip orphaned tmp files from crashed stores *)
                          if String.length name = 32
                             && String.for_all
                                  (function
                                    | '0' .. '9' | 'a' .. 'f' -> true
                                    | _ -> false)
                                  name
                          then Some (name, Filename.concat fan_dir name)
                          else None))

let list_quarantine t =
  match Sys.readdir (quarantine_dir t) with
  | exception Sys_error _ -> []
  | names -> Array.to_list names |> List.sort compare

let list_tmp t =
  let objects = objects_dir t in
  match Sys.readdir objects with
  | exception Sys_error _ -> []
  | fans ->
      Array.to_list fans
      |> List.concat_map (fun fan ->
             let fan_dir = Filename.concat objects fan in
             if not (Sys.is_directory fan_dir) then []
             else
               match Sys.readdir fan_dir with
               | exception Sys_error _ -> []
               | names ->
                   Array.to_list names
                   |> List.filter_map (fun name ->
                          (* <32-hex>.tmp.<domain id> *)
                          if String.length name > 37
                             && String.sub name 32 5 = ".tmp."
                          then Some (Filename.concat fan_dir name)
                          else None))

type stat = {
  entries : int;
  bytes : int;
  quarantine : int;
  runs : int;
  total : counters;
}

let file_size path = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0

let stat t =
  let entries = list_entries t in
  let bytes = List.fold_left (fun a (_, p) -> a + file_size p) 0 entries in
  let runs, total =
    match Journal.load ~path:(log_path t) ~format:log_format with
    | Error _ -> (0, { hits = 0; misses = 0; stores = 0; quarantined = 0 })
    | Ok records ->
        List.fold_left
          (fun (n, acc) r ->
            if r.Journal.tag <> "run" then (n, acc)
            else
              let get k =
                Option.bind (Journal.field r k) int_of_string_opt
                |> Option.value ~default:0
              in
              ( n + 1,
                {
                  hits = acc.hits + get "hits";
                  misses = acc.misses + get "misses";
                  stores = acc.stores + get "stores";
                  quarantined = acc.quarantined + get "quarantined";
                } ))
          (0, { hits = 0; misses = 0; stores = 0; quarantined = 0 })
          records
  in
  {
    entries = List.length entries;
    bytes;
    quarantine = List.length (list_quarantine t);
    runs;
    total;
  }

type verify_report = {
  checked : int;
  ok : int;
  bad : (string * string) list;  (** key, reason — already quarantined *)
}

let verify t =
  let entries = list_entries t in
  let ok = ref 0 and bad = ref [] in
  List.iter
    (fun (key, path) ->
      match parse_entry ~key (read_file path) with
      | Ok _ -> incr ok
      | Error reason ->
          quarantine_move t ~key path;
          bad := (key, reason) :: !bad)
    entries;
  { checked = List.length entries; ok = !ok; bad = List.rev !bad }

type gc_report = {
  kept : int;
  evicted : int;
  freed_bytes : int;
  purged_quarantine : int;
  purged_tmp : int;
}

let gc ?max_bytes t =
  let purged_q =
    List.fold_left
      (fun n name ->
        match Sys.remove (Filename.concat (quarantine_dir t) name) with
        | () -> n + 1
        | exception Sys_error _ -> n)
      0 (list_quarantine t)
  in
  let purged_tmp =
    List.fold_left
      (fun n path ->
        match Sys.remove path with
        | () -> n + 1
        | exception Sys_error _ -> n)
      0 (list_tmp t)
  in
  let entries =
    List.map
      (fun (key, path) ->
        let st =
          try Some (Unix.stat path) with Unix.Unix_error _ -> None
        in
        ( key,
          path,
          (match st with Some s -> s.Unix.st_mtime | None -> 0.0),
          match st with Some s -> s.Unix.st_size | None -> 0 ))
      (list_entries t)
  in
  let total = List.fold_left (fun a (_, _, _, sz) -> a + sz) 0 entries in
  match max_bytes with
  | None ->
      {
        kept = List.length entries;
        evicted = 0;
        freed_bytes = 0;
        purged_quarantine = purged_q;
        purged_tmp;
      }
  | Some budget ->
      (* oldest first until under budget *)
      let by_age =
        List.sort (fun (_, _, a, _) (_, _, b, _) -> compare a b) entries
      in
      let rec evict remaining acc = function
        | [] -> acc
        | (_, path, _, sz) :: rest when remaining > budget ->
            let removed =
              match Sys.remove path with
              | () -> true
              | exception Sys_error _ -> false
            in
            if removed then
              evict (remaining - sz) ((1, sz) :: acc) rest
            else evict remaining acc rest
        | _ -> acc
      in
      let evictions = evict total [] by_age in
      let evicted = List.length evictions in
      let freed = List.fold_left (fun a (_, sz) -> a + sz) 0 evictions in
      {
        kept = List.length entries - evicted;
        evicted;
        freed_bytes = freed;
        purged_quarantine = purged_q;
        purged_tmp;
      }
