(** Crash-consistent content-addressed result store.

    Results of deterministic computations (suite cells, fuzz cases,
    chaos cells) are memoised under an MD5 {!key} of everything that
    determines them — kernel spec, machine, fault plan, harness config,
    cache format version.  Entries are self-verifying (header line with
    version, own key, payload length and payload MD5) and published in
    two phases (private tmp file → fsync → rename → directory fsync), so
    a reader can never observe a torn entry under its final name.  An
    entry that fails verification is moved to [quarantine/] and treated
    as a miss: the cache may lose work, never invent it.

    All writes are {!Macs_util.Sink} boundaries, so the crash-sweep
    harness covers every store and publish step. *)

type t

type counters = { hits : int; misses : int; stores : int; quarantined : int }
(** Per-process counters since {!open_dir} or {!reset_counters}. *)

val format_version : int
(** Entry/key format version; folded into every digest, so bumping it
    invalidates the whole cache rather than misreading old entries. *)

val open_dir : string -> t
(** Open (creating if needed) a cache rooted at the given directory:
    [objects/<2-hex fan-out>/<key>], [quarantine/], [cache.log]. *)

val key : kind:string -> (string * string) list -> string
(** Digest of the canonical journal encoding of [kind], the cache format
    version, and the given (name, value) parts — order-sensitive, so
    callers must build parts deterministically. *)

val find : t -> key:string -> string option
(** The stored payload, byte-for-byte, or [None].  A present-but-corrupt
    entry (truncated, bit-flipped, mislabelled) is quarantined and
    reported as a miss — never served. *)

val store : t -> key:string -> string -> unit
(** Publish a payload under [key] (no-op if the entry already exists —
    entries are deterministic, so first writer wins). *)

val counters : t -> counters
val reset_counters : t -> unit

val log_run : t -> label:string -> unit
(** Append this process's counters as one [run] record to [cache.log]
    inside the cache directory.  Deliberately {e not} part of any result
    journal: hit/miss ratios differ between cold and warm runs, and
    result journals must stay byte-identical across them. *)

val pp_counters : Format.formatter -> counters -> unit

val counters_json : counters -> string
(** The counters as one machine-parseable JSON line,
    [{"cache":{"hits":H,"misses":M,"stores":S,"quarantined":Q}}] — the
    [--stats-json] output of the CLI harnesses and the shape embedded in
    [macs_serve] stats replies. *)

(** {1 Maintenance} *)

type stat = {
  entries : int;
  bytes : int;
  quarantine : int;  (** files currently quarantined *)
  runs : int;  (** [run] records in [cache.log] *)
  total : counters;  (** summed across all logged runs *)
}

val stat : t -> stat

type verify_report = {
  checked : int;
  ok : int;
  bad : (string * string) list;  (** key, reason — already quarantined *)
}

val verify : t -> verify_report
(** Re-verify every entry; corrupt ones are quarantined. *)

type gc_report = {
  kept : int;
  evicted : int;
  freed_bytes : int;
  purged_quarantine : int;
  purged_tmp : int;
}

val gc : ?max_bytes:int -> t -> gc_report
(** Purge quarantined files and orphaned tmp files from crashed stores;
    with [max_bytes], additionally evict oldest entries until the object
    store fits the budget. *)

(** {1 Entry internals — exposed for tests and the verifier} *)

val entry_path : t -> string -> string
(** On-disk path of the entry for a key. *)

val parse_entry : key:string -> string -> (string, string) result
(** Verify raw entry-file bytes against [key]; [Ok payload] or
    [Error reason]. *)
