open Convex_machine

(** The run supervisor: a Livermore suite run that always finishes.

    [run] wraps {!Macs_report.Suite} with the three robustness layers the
    bare suite lacks:

    - {b watchdog budgets} ({!Budget}): each kernel's simulation is
      cancelled with a typed [Budget_exceeded] diagnostic when it
      overruns its simulated-cycle or wall-clock cap;
    - {b graceful degradation}: a kernel that fails for any reason —
      over budget, stalled out under a fault plan, livelocked — gets the
      analytic estimate ({!Macs.Estimate}) substituted for its measured
      numbers, tagged [Estimated] and excluded from the measured harmonic
      means.  The suite result never aborts and never loses the
      diagnostic;
    - {b checkpoint/resume} ({!Suite_journal}): with a journal path, the
      supervisor checkpoints every completed row to disk; a re-run with
      [~resume:true] replays completed rows byte-identically and picks up
      at the first missing kernel.  [~retry_failed:true] instead re-runs
      only the rows that carry diagnostics (failed or estimated), keeping
      every measured row.

    Every measured row is also cross-checked against the bound oracle
    ({!Macs.Oracle.check_row}); violations ride along in the suite result
    and the journal.

    Kernels run through the fault-tolerant executor
    ({!Convex_exec.Executor}): [~jobs] fans the suite out over worker
    domains with per-worker journal shards, and a kernel whose cell
    raises is quarantined into {!outcome.quarantined} (no row) instead of
    sinking the run.  [~jobs:1] (the default) is pinned byte-identical to
    the historical sequential journaling. *)

type stats = {
  resumed : int;  (** rows replayed from the journal *)
  executed : int;  (** rows simulated by this invocation *)
  estimated : int;
      (** of the executed rows, how many degraded to analytic estimates *)
}

type outcome = {
  suite : Macs_report.Suite.t;
  stats : stats;
  quarantined : Convex_exec.Executor.poison list;
      (** cells whose exception escaped the suite machinery entirely;
          they contribute no row and [--retry-failed] re-runs them *)
  cache_counters : Convex_cache.Cache.counters option;
      (** hit/miss/store/quarantine counts when [~cache] was given;
          never rendered into the suite report, so cold and warm runs
          stay byte-identical *)
}

val run :
  ?machine:Machine.t ->
  ?opt:Fcc.Opt_level.t ->
  ?faults:Convex_fault.Fault.t ->
  ?guard:int ->
  ?budget:Budget.t ->
  ?oracle_tol:float ->
  ?jobs:int ->
  ?journal:string ->
  ?resume:bool ->
  ?retry_failed:bool ->
  ?cache:string ->
  ?fidelity:Convex_vpsim.Fastpath.fidelity ->
  unit ->
  (outcome, string) result
(** Errors only on journal problems the caller must decide about: an
    unreadable or corrupt journal, or a resume whose journaled config
    (machine, opt level, fault plan, guard) differs from the requested
    run — replaying rows measured under different conditions would
    silently mix incomparable numbers.  [retry_failed] implies resume.
    Simulation failures never surface here; they degrade to estimates.

    [cache] points at a {!Convex_cache.Cache} directory: each cell's
    journal record block is memoised under a key of (config, budget,
    oracle tolerance, kernel), so a warm re-run journals byte-identical
    records without simulating.  A resume aimed at a [Fresh] journal
    (missing, empty, or an interrupted create — see
    {!Macs_util.Journal.inspect}) starts over instead of failing.

    [fidelity] selects the simulator tier exactly as in
    {!Convex_vpsim.Sim.run} (default cycle).  Rows, journals and cache
    payloads are bit-identical across tiers, so the flag is a pure speed
    knob and is excluded from both the journal config and the cache
    key. *)
