open Macs_util

type t = { max_cycles : float option; max_wall_s : float option }

let none = { max_cycles = None; max_wall_s = None }
let make ?max_cycles ?max_wall_s () = { max_cycles; max_wall_s }
let is_none b = b.max_cycles = None && b.max_wall_s = None

let watchdog ~site b =
  if is_none b then None
  else
    let started = Clock.now () in
    Some
      (fun ~cycle ->
        match b.max_cycles with
        | Some cap when cycle > cap ->
            Some
              (Macs_error.budget_exceeded ~site ~resource:"simulated-cycles"
                 ~budget:cap ~spent:cycle)
        | _ -> (
            match b.max_wall_s with
            | Some cap ->
                let spent = Clock.elapsed ~since:started in
                if spent > cap then
                  Some
                    (Macs_error.budget_exceeded ~site
                       ~resource:"wall-seconds" ~budget:cap ~spent)
                else None
            | None -> None))

let to_string b =
  match (b.max_cycles, b.max_wall_s) with
  | None, None -> "unbudgeted"
  | Some c, None -> Printf.sprintf "%.0f cycles" c
  | None, Some s -> Printf.sprintf "%.3g wall-seconds" s
  | Some c, Some s -> Printf.sprintf "%.0f cycles, %.3g wall-seconds" c s
