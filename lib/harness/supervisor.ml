open Convex_machine
open Convex_fault
open Macs_report
module Exec = Convex_exec.Executor
module J = Macs_util.Journal
module Cache = Convex_cache.Cache

type stats = { resumed : int; executed : int; estimated : int }

type outcome = {
  suite : Suite.t;
  stats : stats;
  quarantined : Exec.poison list;
  cache_counters : Cache.counters option;
}

let ( let* ) = Result.bind

let config_mismatch (want : Suite_journal.config)
    (got : Suite_journal.config) =
  let diff name w g =
    if w = g then None else Some (Printf.sprintf "%s %S vs %S" name g w)
  in
  List.filter_map Fun.id
    [
      diff "machine" want.Suite_journal.machine got.Suite_journal.machine;
      diff "opt" want.Suite_journal.opt got.Suite_journal.opt;
      diff "faults" want.Suite_journal.faults got.Suite_journal.faults;
      diff "guard"
        (string_of_int want.Suite_journal.guard)
        (string_of_int got.Suite_journal.guard);
    ]

(* Substitute the analytic estimate for a row the simulation could not
   finish: optimistic numbers, the diagnostic kept, the suite intact. *)
let degrade ~machine ~opt (row : Suite.row) err =
  let e = Macs.Estimate.of_kernel ~machine ~opt row.Suite.kernel in
  {
    row with
    Suite.outcome =
      Ok
        {
          Suite.cpl = e.Macs.Estimate.cpl;
          cpf = e.Macs.Estimate.cpf;
          mflops = e.Macs.Estimate.mflops;
          checksum = Float.nan;
          checksum_ok = false;
        };
    source = Suite.Estimated err;
  }

let records_of_prior = function
  | Exec.Done c -> Suite_journal.records_of_cell c
  | Exec.Poisoned p -> [ Exec.poison_record p ]

(* Resume: merge any journal shards a killed parallel run left behind
   back into the main journal ({!J.merge_shards}), then decode each
   cell block — retry attempts and violations close with their row; a
   lone poison record is a quarantined cell. *)
let load_prior ~path ~config ~retry_failed ~karr =
  let config_ok r =
    let* got = Suite_journal.config_of_record r in
    match config_mismatch config got with
    | [] -> Ok ()
    | diffs ->
        Error
          (Printf.sprintf
             "journal %s was recorded under a different configuration (%s); \
              refusing to mix incomparable rows — rerun without --resume to \
              start over"
             path
             (String.concat ", " diffs))
  in
  let kernel_index id =
    let rec go i =
      if i >= Array.length karr then None
      else if karr.(i).Lfk.Kernel.id = id then Some i
      else go (i + 1)
    in
    go 0
  in
  let index_of r =
    match r.J.tag with
    | "row" ->
        Option.bind (Option.bind (J.field r "lfk") J.get_int) kernel_index
    | "poison" -> Option.bind (J.field r "index") J.get_int
    | _ -> None
  in
  let had_shards = J.shards ~path <> [] in
  let* orig, groups =
    J.merge_shards ~path ~format:Suite_journal.format ~config_ok ~index_of
  in
  let* prior =
    List.fold_left
      (fun acc (i, records) ->
        let* acc = acc in
        match records with
        | [ r ] when r.J.tag = "poison" ->
            let* p = Exec.poison_of_record r in
            Ok ((i, Exec.Poisoned p) :: acc)
        | _ ->
            let* cell = Suite_journal.cell_of_records records in
            Ok ((i, Exec.Done cell) :: acc))
      (Ok []) groups
  in
  let prior = List.rev prior in
  let keep =
    if retry_failed then
      List.filter
        (fun (_, o) ->
          match o with
          | Exec.Done (c : Suite_journal.cell) -> (
              match
                (c.Suite_journal.row.Suite.outcome, c.Suite_journal.row.Suite.source)
              with
              | Ok _, Suite.Measured -> true
              | _ -> false)
          | Exec.Poisoned _ -> false)
        prior
    else prior
  in
  if retry_failed then
    J.write_atomic ~path ~format:Suite_journal.format
      (orig :: List.concat_map (fun (_, o) -> records_of_prior o) keep);
  Ok (orig, keep, retry_failed || had_shards)

(* a cell's cache payload is exactly its journal record block, so a hit
   re-journals the same bytes a recompute would have written *)
let cell_of_payload s =
  let* records =
    List.fold_left
      (fun acc line ->
        let* acc = acc in
        let* r = J.decode line in
        Ok (r :: acc))
      (Ok [])
      (String.split_on_char '\n' s)
  in
  Suite_journal.cell_of_records (List.rev records)

let payload_of_cell c =
  String.concat "\n" (List.map J.encode (Suite_journal.records_of_cell c))

let run ?(machine = Machine.c240) ?(opt = Fcc.Opt_level.v61)
    ?(faults = Fault.none) ?guard ?(budget = Budget.none)
    ?(oracle_tol = Macs.Oracle.default_tol) ?(jobs = 1) ?journal
    ?(resume = false) ?(retry_failed = false) ?cache ?fidelity () =
  let guard =
    match guard with
    | Some g -> g
    | None ->
        if Fault.is_none faults then Convex_vpsim.Sim.default_guard
        else Suite.faulted_guard
  in
  let config =
    Suite_journal.config_of_run ~machine_name:machine.Machine.name ~opt
      ~faults ~guard
  in
  let resume = resume || retry_failed in
  let karr = Array.of_list (Suite.kernels ()) in
  let cells = Array.length karr in
  (* a file in the [Fresh] state — missing, empty, or an interrupted
     create — never received a cell, so resuming into it degenerates to
     starting over *)
  let live path =
    not (J.is_fresh ~path ~format:Suite_journal.format)
  in
  let* orig_config, prior, rewrite =
    match journal with
    | Some path when resume && live path ->
        load_prior ~path ~config ~retry_failed ~karr
    | Some _ | None -> Ok (Suite_journal.config_record config, [], false)
  in
  (* a fresh run (or a resume aimed at a missing file) starts the journal
     with just the config record; a true resume appends after — or, when
     shards were merged, rewrites over — the existing records *)
  (match journal with
  | Some path when (not resume) || not (live path) ->
      Suite_journal.start ~path config
  | _ -> ());
  let replayed = Hashtbl.create 16 in
  List.iter (fun (i, o) -> Hashtbl.replace replayed i o) prior;
  let cache = Option.map Cache.open_dir cache in
  (* [fidelity] is deliberately absent from the key: the tiers are
     bit-identical by contract, so cached cells stay valid across the
     flag *)
  let cell_key k =
    Cache.key ~kind:"suite-cell"
      [
        ("config", J.encode (Suite_journal.config_record config));
        ("budget", Budget.to_string budget);
        ("tol", J.put_float oracle_tol);
        ("kernel", Digest.to_hex (Digest.string (Marshal.to_string k [])));
      ]
  in
  let compute_cell i =
    let k = karr.(i) in
    let watchdog =
      Budget.watchdog
        ~site:(Printf.sprintf "Supervisor(%s)" k.Lfk.Kernel.name)
        budget
    in
    let row, attempts =
      Suite.run_kernel_attempts ?watchdog ?fidelity ~machine ~opt ~faults
        ~guard k
    in
    match row.Suite.outcome with
    | Ok p ->
        (* cross-check every measured row against the bounds hierarchy *)
        let vs =
          Macs.Oracle.check_row ~tol:oracle_tol ~machine
            (Fcc.Compiler.compile ~opt k)
            ~measured_cpl:p.Suite.cpl
        in
        { Suite_journal.row; attempts; violations = vs }
    | Error e ->
        {
          Suite_journal.row = degrade ~machine ~opt row e;
          attempts;
          violations = [];
        }
  in
  let run_cell i =
    match cache with
    | None -> compute_cell i
    | Some c -> (
        let key = cell_key karr.(i) in
        let hit =
          Option.bind (Cache.find c ~key) (fun payload ->
              Result.to_option (cell_of_payload payload))
        in
        match hit with
        | Some cell -> cell
        | None ->
            let cell = compute_cell i in
            Cache.store c ~key (payload_of_cell cell);
            cell)
  in
  let journal_spec =
    Option.map
      (fun path ->
        {
          Exec.path;
          format = Suite_journal.format;
          config = orig_config;
          records_of = (fun _ c -> Suite_journal.records_of_cell c);
        })
      journal
  in
  let outcomes, estats =
    Exec.run ~jobs ?journal:journal_spec ~rewrite
      ~already:(fun i -> Hashtbl.find_opt replayed i)
      ~context:(fun i ->
        Printf.sprintf "LFK%d (%s)" karr.(i).Lfk.Kernel.id
          karr.(i).Lfk.Kernel.name)
      ~cells run_cell
  in
  let rows = ref [] and violations = ref [] in
  let poisons = ref [] and estimated = ref 0 in
  Array.iteri
    (fun i o ->
      match o with
      | Some (Exec.Done (c : Suite_journal.cell)) ->
          rows := c.Suite_journal.row :: !rows;
          violations :=
            List.rev_append c.Suite_journal.violations !violations;
          if not (Hashtbl.mem replayed i) then (
            match c.Suite_journal.row.Suite.source with
            | Suite.Estimated _ -> incr estimated
            | Suite.Measured -> ())
      | Some (Exec.Poisoned p) -> poisons := p :: !poisons
      | None -> ())
    outcomes;
  let suite =
    Suite.of_rows
      ~violations:(List.rev !violations)
      ~machine ~faults (List.rev !rows)
  in
  Option.iter
    (fun c ->
      Cache.log_run c
        ~label:
          (Printf.sprintf "suite machine=%s jobs=%d" machine.Machine.name jobs))
    cache;
  Ok
    {
      suite;
      stats =
        {
          resumed = estats.Exec.replayed;
          executed = estats.Exec.executed;
          estimated = !estimated;
        };
      quarantined = List.rev !poisons;
      cache_counters = Option.map Cache.counters cache;
    }
