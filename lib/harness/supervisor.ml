open Convex_machine
open Convex_fault
open Macs_report

type stats = { resumed : int; executed : int; estimated : int }
type outcome = { suite : Suite.t; stats : stats }

let ( let* ) = Result.bind

let config_mismatch (want : Suite_journal.config)
    (got : Suite_journal.config) =
  let diff name w g =
    if w = g then None else Some (Printf.sprintf "%s %S vs %S" name g w)
  in
  List.filter_map Fun.id
    [
      diff "machine" want.Suite_journal.machine got.Suite_journal.machine;
      diff "opt" want.Suite_journal.opt got.Suite_journal.opt;
      diff "faults" want.Suite_journal.faults got.Suite_journal.faults;
      diff "guard"
        (string_of_int want.Suite_journal.guard)
        (string_of_int got.Suite_journal.guard);
    ]

(* Substitute the analytic estimate for a row the simulation could not
   finish: optimistic numbers, the diagnostic kept, the suite intact. *)
let degrade ~machine ~opt (row : Suite.row) err =
  let e = Macs.Estimate.of_kernel ~machine ~opt row.Suite.kernel in
  {
    row with
    Suite.outcome =
      Ok
        {
          Suite.cpl = e.Macs.Estimate.cpl;
          cpf = e.Macs.Estimate.cpf;
          mflops = e.Macs.Estimate.mflops;
          checksum = Float.nan;
          checksum_ok = false;
        };
    source = Suite.Estimated err;
  }

let load_prior ~path ~config ~retry_failed =
  if not (Sys.file_exists path) then Ok ([], [])
  else
    (* the previous writer may have died mid-record: truncate the torn
       tail so our appends start a fresh line *)
    let* () = Suite_journal.repair ~path in
    let* got, rows, violations = Suite_journal.load ~path in
    match config_mismatch config got with
    | [] ->
        let keep =
          if retry_failed then
            List.filter
              (fun (r : Suite.row) ->
                match (r.Suite.outcome, r.Suite.source) with
                | Ok _, Suite.Measured -> true
                | _ -> false)
              rows
          else rows
        in
        Ok (keep, violations)
    | diffs ->
        Error
          (Printf.sprintf
             "journal %s was recorded under a different configuration (%s); \
              refusing to mix incomparable rows — rerun without --resume to \
              start over"
             path
             (String.concat ", " diffs))

let run ?(machine = Machine.c240) ?(opt = Fcc.Opt_level.v61)
    ?(faults = Fault.none) ?guard ?(budget = Budget.none)
    ?(oracle_tol = Macs.Oracle.default_tol) ?journal ?(resume = false)
    ?(retry_failed = false) () =
  let guard =
    match guard with
    | Some g -> g
    | None ->
        if Fault.is_none faults then Convex_vpsim.Sim.default_guard
        else Suite.faulted_guard
  in
  let config =
    Suite_journal.config_of_run ~machine_name:machine.Machine.name ~opt
      ~faults ~guard
  in
  let resume = resume || retry_failed in
  let* prior_rows, prior_violations =
    match journal with
    | Some path when resume -> load_prior ~path ~config ~retry_failed
    | Some _ | None -> Ok ([], [])
  in
  (* Set the journal up so completed work is never journaled twice: a
     resumed run appends after the existing rows (leaving them
     byte-identical); a retry rewrites the kept rows through a temp file;
     a fresh run truncates. *)
  (match journal with
  | None -> ()
  | Some path ->
      if retry_failed && Sys.file_exists path then (
        let tmp = path ^ ".tmp" in
        Suite_journal.write ~path:tmp config ~rows:prior_rows
          ~violations:prior_violations;
        Sys.rename tmp path)
      else if (not resume) || not (Sys.file_exists path) then
        Suite_journal.start ~path config);
  let resumed = List.length prior_rows in
  let executed = ref 0 and estimated = ref 0 in
  let new_violations = ref [] in
  let checkpoint_row row =
    Option.iter (fun path -> Suite_journal.append_row ~path row) journal
  in
  let checkpoint_violation v =
    Option.iter (fun path -> Suite_journal.append_violation ~path v) journal
  in
  let run_one (k : Lfk.Kernel.t) =
    incr executed;
    let watchdog =
      Budget.watchdog
        ~site:(Printf.sprintf "Supervisor(%s)" k.Lfk.Kernel.name)
        budget
    in
    let row = Suite.run_kernel ?watchdog ~machine ~opt ~faults ~guard k in
    let row =
      match row.Suite.outcome with
      | Ok p ->
          (* cross-check every measured row against the bounds hierarchy *)
          let vs =
            Macs.Oracle.check_row ~tol:oracle_tol ~machine
              (Fcc.Compiler.compile ~opt k)
              ~measured_cpl:p.Suite.cpl
          in
          List.iter
            (fun v ->
              new_violations := v :: !new_violations;
              checkpoint_violation v)
            vs;
          row
      | Error e ->
          incr estimated;
          degrade ~machine ~opt row e
    in
    checkpoint_row row;
    row
  in
  let rows =
    List.map
      (fun (k : Lfk.Kernel.t) ->
        match
          List.find_opt
            (fun (r : Suite.row) ->
              r.Suite.kernel.Lfk.Kernel.id = k.Lfk.Kernel.id)
            prior_rows
        with
        | Some r -> r
        | None -> run_one k)
      (Suite.kernels ())
  in
  let violations = prior_violations @ List.rev !new_violations in
  let suite = Suite.of_rows ~violations ~machine ~faults rows in
  Ok
    {
      suite;
      stats =
        { resumed; executed = !executed; estimated = !estimated };
    }
