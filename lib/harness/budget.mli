(** Per-run watchdog budgets.

    A budget caps what one kernel's simulation may spend — simulated
    cycles, host wall-clock seconds, or both.  {!watchdog} compiles a
    budget into the polling closure {!Convex_vpsim.Sim.run} threads
    through its stepping loop; when a cap is crossed the run is cancelled
    with a typed [Budget_exceeded] diagnostic
    ({!Macs_util.Macs_error.t}), which the supervisor treats like any
    other per-kernel failure: substitute the analytic estimate, never
    abort the suite.

    Budget checks are deliberately one-sided: a run that finishes under
    budget is indistinguishable from an unbudgeted one, so budgets never
    perturb measured numbers. *)

type t = {
  max_cycles : float option;  (** simulated cycles per kernel run *)
  max_wall_s : float option;  (** host wall-clock seconds per kernel run *)
}

val none : t
val make : ?max_cycles:float -> ?max_wall_s:float -> unit -> t
val is_none : t -> bool

val watchdog :
  site:string -> t -> (cycle:float -> Macs_util.Macs_error.t option) option
(** [watchdog ~site b] is [None] for an empty budget; otherwise a fresh
    closure whose wall clock starts now.  Create one per run — reusing a
    closure carries the previous run's start time with it. *)

val to_string : t -> string
