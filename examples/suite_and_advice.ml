(* The two "daily driver" entry points of the library:

   1. run the whole Livermore suite (ten vectorized kernels plus the two
      scalar-mode recurrences), with every kernel's output checksummed
      against its reference implementation;
   2. ask the goal-directed advisor (the paper's concluding vision) where
      the time would best be spent, per kernel.

   Run with: dune exec examples/suite_and_advice.exe *)

let () =
  let suite = Macs_report.Suite.run () in
  print_string (Macs_report.Suite.render suite);
  print_newline ();

  (* kernels that completed, with their measurements; on the healthy
     machine that is all of them *)
  let measured =
    List.filter_map
      (fun (r : Macs_report.Suite.row) ->
        match r.outcome with Ok p -> Some (r, p) | Error _ -> None)
      suite.rows
  in

  (* advice for the kernels furthest from peak *)
  let worst =
    measured
    |> List.sort
         (fun ((_ : Macs_report.Suite.row), (a : Macs_report.Suite.perf))
              (_, b) -> Float.compare b.cpf a.cpf)
    |> List.filteri (fun i _ -> i < 3)
  in
  print_endline "advice for the three slowest kernels:";
  print_newline ();
  List.iter
    (fun ((r : Macs_report.Suite.row), _) ->
      print_string (Macs.Advisor.report r.kernel))
    worst;

  (* and the parallel-throughput picture for the fastest one *)
  print_newline ();
  let best, _ =
    List.fold_left
      (fun acc ((_, p) as cand) ->
        match acc with
        | Some (_, (b : Macs_report.Suite.perf)) when b.cpf <= p.Macs_report.Suite.cpf -> acc
        | _ -> Some cand)
      None measured
    |> Option.get
  in
  let c = Fcc.Compiler.compile best.Macs_report.Suite.kernel in
  let par =
    Convex_vpsim.Parallel.run_exn
      (Convex_vpsim.Parallel.replicate
         (c.Fcc.Compiler.job, c.Fcc.Compiler.flops_per_iteration)
         4)
  in
  Format.printf "four copies of the fastest kernel (%s):@.%a@."
    best.Macs_report.Suite.kernel.name Convex_vpsim.Parallel.pp par
