(* Applying the library to code the paper never saw: define new kernels in
   the loop IR, compile them, and read their bounds hierarchy.

   Two examples:
   - a STREAM-style triad  a(i) = b(i) + q*c(i)     (memory-bound)
   - a 5-point stencil     a(i) = w*(b(i-2)+b(i-1)+b(i)+b(i+1)+b(i+2))
     whose shifted reuse stream is exactly the pattern the V6.1 compiler
     reloads, so the MA->MAC gap the paper describes for LFK7 reappears.

   Run with: dune exec examples/custom_kernel.exe *)

open Lfk.Ir

let ref_ ?(scale = 1) array offset = { array; scale; offset }
let ld array offset = Load (ref_ array offset)

let triad : Lfk.Kernel.t =
  {
    id = 101;
    name = "triad";
    description = "STREAM triad a(i) = b(i) + q*c(i)";
    fortran = "DO 1 i= 1,n\n1 A(i)= B(i) + Q*C(i)";
    body =
      [ Store (ref_ "A" 0, Add (ld "B" 0, Mul (Scalar "q", ld "C" 0))) ];
    acc = None;
    scalars = [ ("q", 3.0) ];
    arrays = [ ("A", 2048); ("B", 2048); ("C", 2048) ];
    aliases = [];
    segments = [ { base = 0; length = 2000; shifts = [] } ];
    outer_ops = 0;
  }

let stencil : Lfk.Kernel.t =
  let b k = ld "B" k in
  {
    id = 102;
    name = "stencil5";
    description = "5-point stencil with shifted reuse";
    fortran =
      "DO 1 i= 3,n-2\n1 A(i)= W*(B(i-2)+B(i-1)+B(i)+B(i+1)+B(i+2))";
    body =
      [
        Store
          ( ref_ "A" 2,
            Mul
              ( Scalar "w",
                Add (Add (Add (Add (b 0, b 1), b 2), b 3), b 4) ) );
      ];
    acc = None;
    scalars = [ ("w", 0.2) ];
    arrays = [ ("A", 2048); ("B", 2048) ];
    aliases = [];
    segments = [ { base = 0; length = 1996; shifts = [] } ];
    outer_ops = 0;
  }

let show kernel =
  Printf.printf "=== %s: %s ===\n\n" kernel.Lfk.Kernel.name
    kernel.Lfk.Kernel.description;
  (match Lfk.Kernel.validate kernel with
  | Ok () -> ()
  | Error e ->
      Printf.eprintf "invalid kernel %s: %s\n" kernel.Lfk.Kernel.name e;
      exit 1);
  let compiled = Fcc.Compiler.compile kernel in
  print_string (Fcc.Compiler.listing compiled);
  let h = Macs.Hierarchy.of_compiled compiled in
  Format.printf "@.%a@.@." Macs.Hierarchy.pp_summary h;
  print_string (Macs.Diagnose.report h);
  (* what would a reuse-capable compiler deliver? *)
  let ideal =
    Macs.Hierarchy.of_compiled
      (Fcc.Compiler.compile ~opt:Fcc.Opt_level.ideal kernel)
  in
  Printf.printf
    "with ideal stream reuse the MACS bound falls from %.3f to %.3f CPF\n\n"
    (Macs.Hierarchy.t_macs_cpf h)
    (Macs.Hierarchy.t_macs_cpf ideal)

let () =
  show triad;
  show stencil
