examples/custom_kernel.ml: Fcc Format Lfk Macs Printf
