examples/calibration.mli:
