examples/compiler_ablation.mli:
