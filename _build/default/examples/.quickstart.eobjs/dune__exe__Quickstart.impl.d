examples/quickstart.ml: Convex_isa Convex_machine Fcc Format Lfk List Macs Printf
