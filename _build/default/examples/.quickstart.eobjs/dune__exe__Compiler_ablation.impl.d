examples/compiler_ablation.ml: Convex_machine Convex_vpsim Fcc Float Lfk List Macs Macs_report Printf
