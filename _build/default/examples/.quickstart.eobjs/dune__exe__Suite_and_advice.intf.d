examples/suite_and_advice.mli:
