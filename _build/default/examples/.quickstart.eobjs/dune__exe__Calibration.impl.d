examples/calibration.ml: Calibrate Convex_isa Convex_vpsim Instr List Macs_report Printf Reg
