examples/quickstart.mli:
