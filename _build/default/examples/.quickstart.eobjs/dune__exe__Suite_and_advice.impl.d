examples/suite_and_advice.ml: Convex_vpsim Fcc Float Format List Macs Macs_report Option
