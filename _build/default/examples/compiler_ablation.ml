(* Ablations: what the MACS hierarchy says about fixing the compiler or
   the machine.

   The paper's section 4.4 blames the MA->MAC gap of LFK 1, 7 and 12 on
   reloads of reuse streams shifted by the loop increment, and remarks
   that a scalar machine could keep those elements in registers.  The
   `ideal` optimization level implements that hypothetical compiler; the
   machine variants answer "what if tailgating were perfect / memory never
   refreshed / the machine had a second memory pipe".

   Run with: dune exec examples/compiler_ablation.exe *)

let () =
  print_endline (Macs_report.Tables.ablation_compiler ());
  print_newline ();
  print_endline (Macs_report.Tables.ablation_machine ());
  print_newline ();

  (* focus: the reload kernels the paper singles out *)
  print_endline
    "MA-gap recovery on the reload kernels (measured CPF, v61 vs ideal):";
  List.iter
    (fun id ->
      let k = Lfk.Kernels.find id in
      let v61 = Macs.Hierarchy.analyze k in
      let ideal = Macs.Hierarchy.analyze ~opt:Fcc.Opt_level.ideal k in
      Printf.printf
        "  lfk%-2d  v61 %.3f -> ideal %.3f  (MA bound %.3f): recovered \
         %.0f%% of the compiler gap\n"
        id
        (Macs.Hierarchy.t_p_cpf v61)
        (Macs.Hierarchy.t_p_cpf ideal)
        (Macs.Hierarchy.t_ma_cpf v61)
        (100.0
        *. (Macs.Hierarchy.t_p_cpf v61 -. Macs.Hierarchy.t_p_cpf ideal)
        /. Float.max 1e-9
             (Macs.Hierarchy.t_p_cpf v61 -. Macs.Hierarchy.t_ma_cpf v61)))
    [ 1; 7; 12 ];
  print_newline ();

  (* dual memory pipe: who benefits? exactly the memory-bound kernels *)
  print_endline "dual load/store pipe speedup (measured CPL ratio):";
  List.iter
    (fun (k : Lfk.Kernel.t) ->
      let base = Macs.Hierarchy.analyze k in
      let dual =
        Macs.Hierarchy.analyze
          ~machine:Convex_machine.Machine.(dual_load_store c240)
          k
      in
      Printf.printf "  lfk%-2d  %.2fx %s\n" k.id
        (base.t_p.Convex_vpsim.Measure.cpl
        /. dual.t_p.Convex_vpsim.Measure.cpl)
        (if Macs.Counts.t_m base.mac > Macs.Counts.t_f base.mac then
           "(memory-bound)"
         else "(fp-bound)"))
    Lfk.Kernels.all
