(* The two "daily driver" entry points of the library:

   1. run the whole Livermore suite (ten vectorized kernels plus the two
      scalar-mode recurrences), with every kernel's output checksummed
      against its reference implementation;
   2. ask the goal-directed advisor (the paper's concluding vision) where
      the time would best be spent, per kernel.

   Run with: dune exec examples/suite_and_advice.exe *)

let () =
  let suite = Macs_report.Suite.run () in
  print_string (Macs_report.Suite.render suite);
  print_newline ();

  (* advice for the kernels furthest from peak *)
  let worst =
    suite.rows
    |> List.sort (fun (a : Macs_report.Suite.row) b ->
           Float.compare b.cpf a.cpf)
    |> List.filteri (fun i _ -> i < 3)
  in
  print_endline "advice for the three slowest kernels:";
  print_newline ();
  List.iter
    (fun (r : Macs_report.Suite.row) ->
      print_string (Macs.Advisor.report r.kernel))
    worst;

  (* and the parallel-throughput picture for the fastest one *)
  print_newline ();
  let best =
    List.fold_left
      (fun acc (r : Macs_report.Suite.row) ->
        match acc with
        | Some (b : Macs_report.Suite.row) when b.cpf <= r.cpf -> acc
        | _ -> Some r)
      None suite.rows
    |> Option.get
  in
  let c = Fcc.Compiler.compile best.kernel in
  let par =
    Convex_vpsim.Parallel.run
      (Convex_vpsim.Parallel.replicate
         (c.Fcc.Compiler.job, c.Fcc.Compiler.flops_per_iteration)
         4)
  in
  Format.printf "four copies of the fastest kernel (%s):@.%a@."
    best.kernel.name Convex_vpsim.Parallel.pp par
