(* Quickstart: the full MACS methodology on one kernel, end to end.

   We take LFK1 (the paper's worked example), compile it with the modeled
   V6.1 compiler, compute the MA / MAC / MACS bounds, run the full code
   and the A/X process codes on the cycle-level simulator, and print the
   automated gap diagnosis.  Run with:

     dune exec examples/quickstart.exe *)

let () =
  let kernel = Lfk.Kernels.lfk1 in
  Printf.printf "Kernel: %s - %s\n\n%s\n\n" kernel.name kernel.description
    kernel.fortran;

  (* 1. compile: high-level loop IR -> Convex vector assembly *)
  let compiled = Fcc.Compiler.compile kernel in
  print_endline "Compiled inner loop (one strip):";
  print_string (Fcc.Compiler.listing compiled);

  (* 2. the chime partition behind the MACS bound *)
  let body = Convex_isa.Program.body compiled.program in
  let machine = Convex_machine.Machine.c240 in
  let chimes = Macs.Chime.partition ~machine body in
  Printf.printf "\nThe schedule partitions into %d chimes:\n"
    (List.length chimes);
  List.iteri
    (fun i c -> Format.printf "%d. %a@." (i + 1) Macs.Chime.pp c)
    chimes;

  (* 3. the full hierarchy: bounds above, measurements below *)
  let h = Macs.Hierarchy.of_compiled compiled in
  Format.printf "@.%a@.@." Macs.Hierarchy.pp_summary h;

  (* 4. what is eating the remaining cycles? *)
  print_string (Macs.Diagnose.report h);

  (* 5. sanity: eq. 18 of the paper *)
  Printf.printf "\neq. 18 (max(t_x,t_a) <= t_p <= t_x + t_a) holds: %b\n"
    (Macs.Hierarchy.eq18_holds h)
