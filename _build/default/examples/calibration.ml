(* Calibration loops (paper section 3.2): recover a machine's timing
   parameters by measurement, without trusting the data book.

   The paper ran specially constructed loops on the real C-240 to confirm
   the specified X/Y/Z values and to discover the undocumented tailgate
   bubble B.  Here we run the same loops against the simulator and fit
   eq. 5 (X + Y + Z*VL) and the steady-state repetition cost (Z*VL + B).

   Run with: dune exec examples/calibration.exe *)

open Convex_isa
open Convex_vpsim

let () =
  print_endline (Macs_report.Tables.table1 ());
  print_newline ();

  (* the raw sweep behind one fit: vector load cycles vs VL *)
  let sweep = [ 8; 16; 32; 64; 96; 128 ] in
  print_endline "vector load: isolated-instruction cycles vs VL";
  List.iter
    (fun vl ->
      let cycles = Calibrate.single_run_cycles Instr.Cld ~vl in
      Printf.printf "  VL=%3d  %6.1f cycles  (eq. 5 predicts %d)\n" vl cycles
        (2 + 10 + vl))
    sweep;

  (* eq. 13: a chime preceded by at least one chime costs Z*VL + sum B *)
  print_newline ();
  print_endline "steady-state chime calibration (eq. 13):";
  let v = Reg.v and s = Reg.s in
  let mem array offset : Instr.mem = { array; offset; stride = 1 } in
  let chime_ld_mul =
    [
      Instr.Vld { dst = v 0; src = mem "ZX" 10 };
      Instr.Vbin { op = Mul; dst = v 1; src1 = Vr (v 0); src2 = Sr (s 1) };
    ]
  in
  let chime_ld_mul_add =
    chime_ld_mul
    @ [ Instr.Vbin { op = Add; dst = v 2; src1 = Vr (v 1); src2 = Vr (v 3) } ]
  in
  List.iter
    (fun (label, instrs, expect) ->
      Printf.printf "  %-22s %7.2f cycles (VL + sum B = %d, plus refresh)\n"
        label
        (Calibrate.chime_cycles instrs)
        expect)
    [
      ("load+multiply", chime_ld_mul, 128 + 2 + 1);
      ("load+multiply+add", chime_ld_mul_add, 128 + 2 + 1 + 1);
    ];

  (* divides are long but maskable: back-to-back divide chimes run at
     Z*VL + B = 4*128 + 21 *)
  Printf.printf "  %-22s %7.2f cycles (Z*VL + B = %d)\n" "divide (Z=4)"
    (Calibrate.chime_cycles
       [ Instr.Vbin { op = Div; dst = v 2; src1 = Vr (v 0); src2 = Vr (v 1) } ])
    ((4 * 128) + 21)
