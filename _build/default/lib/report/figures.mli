(** Renderers for the paper's figures. *)

val figure2 : unit -> string
(** Figure 2: chaining with perfect tailgating — the ld/add/mul example
    of §3.3 traced on the simulator, with an ASCII timeline per pipe, the
    162-cycle chained total, the ~422-cycle unchained total, and the
    VL + ΣB steady-state chime. *)

val figure3 : ?load_average:float -> Dataset.t -> string
(** Figure 3: CPF per kernel as grouped bars — MA bound, MAC bound, MACS
    bound, measured single-process, and measured with a multi-process
    memory-contention workload ([load_average] defaults to the paper's
    5.1). *)

val pipeline_trace : ?kernel:int -> unit -> string
(** A Gantt view of the first two strips of a kernel (default LFK1) on the
    simulator: one bar per vector instruction, grouped by strip, showing
    chaining hand-offs and the steady-state chime cadence. *)
