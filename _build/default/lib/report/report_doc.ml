let sections () =
  let ds = Dataset.compute () in
  [
    ("Table 1 — instruction timing (calibration)", Tables.table1 ());
    ("Figure 2 — chaining and tailgating", Figures.figure2 ());
    ("Table 2 — LFK workload", Tables.table2 ds);
    ("Table 3 — bounds (CPL)", Tables.table3 ds);
    ("Table 4 — bounds vs measured (CPF)", Tables.table4 ds);
    ("Table 5 — A/X measurements (CPL)", Tables.table5 ds);
    ("Figure 3 — bounds hierarchy per kernel", Figures.figure3 ds);
    ("LFK1 worked example (paper section 3.5)", Tables.lfk1_example ());
    ("Gap diagnosis (paper section 4.4)", Tables.diagnosis ds);
    ("Ablation — compiler levels", Tables.ablation_compiler ());
    ("Ablation — machine variants", Tables.ablation_machine ());
    ("Pipe utilization", Tables.utilization ds);
    ("Extension — scalar mode", Tables.scalar_mode ());
    ("Extension — parallel vector mode", Tables.parallel_mode ());
    ("Extension — the D (stride) bound", Tables.stride_sweep ());
    ("Extension — roofline view", Tables.roofline ());
    ("Extension — Hockney characterization", Tables.hockney ());
    ("Extension — design space", Tables.design_space ());
    ("Extension — kernel gallery", Tables.gallery ());
    ("Pipeline trace (LFK1)", Figures.pipeline_trace ());
    ("Livermore suite", Suite.render (Suite.run ()));
    ("Goal-directed advice", Tables.advice ());
  ]

let to_markdown () =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf
    "# MACS reproduction — generated results\n\n\
     Regenerate with `dune exec bench/main.exe` or \
     `dune exec bin/macs_cli.exe -- report`.\n";
  List.iter
    (fun (title, body) ->
      Buffer.add_string buf (Printf.sprintf "\n## %s\n\n```\n" title);
      Buffer.add_string buf body;
      if body = "" || body.[String.length body - 1] <> '\n' then
        Buffer.add_char buf '\n';
      Buffer.add_string buf "```\n")
    (sections ());
  Buffer.contents buf

let write_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_markdown ()))
