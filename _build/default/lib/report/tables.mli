(** Renderers for the paper's tables, each with side-by-side
    ours-vs-paper columns.  All functions return ready-to-print strings
    (no trailing newline). *)

val table1 : unit -> string
(** Table 1: vector instruction execution times — the machine
    specification against the parameters recovered by running calibration
    loops on the simulator (X+Y, Z, B fits). *)

val table2 : Dataset.t -> string
(** Table 2: LFK workload — MA counts from the high-level IR, MAC counts
    from the compiled assembly (dashes where unchanged, as in the
    paper). *)

val table3 : Dataset.t -> string
(** Table 3: performance bounds in CPL (f-side, m-side, and combined),
    with the paper's (reconstructed) values. *)

val table4 : Dataset.t -> string
(** Table 4: bounds vs measured CPF, percent-of-bound columns, the AVG
    row, and the harmonic-mean MFLOPS row. *)

val table5 : Dataset.t -> string
(** Table 5: MACS bounds and A/X measurements in CPL. *)

val lfk1_example : unit -> string
(** The §3.5 worked example: LFK1's chime partition, per-chime bound,
    per-chime calibration-loop measurement, chime sum, MACS bound and
    measured cycles. *)

val diagnosis : Dataset.t -> string
(** §4.4: automated per-kernel gap diagnosis. *)

val ablation_compiler : unit -> string
(** Ours: MACS bound and measured CPF under the three compiler
    optimization levels (v61 / ideal reuse / loads-first scheduling). *)

val ablation_machine : unit -> string
(** Ours: measured CPF on machine variants (baseline, B=0, no refresh,
    dual load/store pipes). *)

val scalar_mode : unit -> string
(** Extension: the non-vectorizable kernels (LFK5, LFK11) in C-240 scalar
    mode — vectorizer verdicts, the scalar bound components (issue,
    memory, FP, dependence pseudo-unit), measured CPL, and forced-scalar
    vectorization speedups for three vector kernels. *)

val parallel_mode : unit -> string
(** Extension: four-CPU throughput — lockstep (same executable) vs four
    different programs, against the paper's 5-10% and ~20% rules of
    thumb (§4.2). *)

val stride_sweep : unit -> string
(** Extension (the paper's "fifth degree of freedom, D"): sustained
    memory rate vs stride, model against simulator, and the MACD bound on
    a stride-32 demonstration kernel. *)

val advice : unit -> string
(** The goal-directed advisor (paper conclusion) over all twelve kernels:
    ranked, quantified optimization suggestions. *)

val utilization : Dataset.t -> string
(** Per-kernel function-pipe utilization from the measured runs. *)

val roofline : unit -> string
(** The roofline view of the MA bound over the ten kernels: arithmetic
    intensity, the roofline bound, and where MA refines it. *)

val gallery : unit -> string
(** The synthetic kernel gallery: MA/MAC/MACS/MACD bounds vs measured,
    with functional verification. *)

val hockney : unit -> string
(** Hockney (r_inf, n_half) characterization of all twelve kernels against
    the MACS steady-state rate. *)

val design_space : unit -> string
(** Hardware design-space sweep: measured CPF vs maximum vector length,
    and sustained stream rate vs bank count. *)
