lib/report/report_doc.ml: Buffer Dataset Figures Fun List Printf String Suite Tables
