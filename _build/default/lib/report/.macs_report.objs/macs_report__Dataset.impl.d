lib/report/dataset.ml: Array Convex_machine Fcc Lfk List Machine Macs
