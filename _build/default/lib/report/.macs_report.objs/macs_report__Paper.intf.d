lib/report/paper.mli:
