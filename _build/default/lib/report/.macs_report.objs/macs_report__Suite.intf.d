lib/report/suite.mli: Convex_machine Convex_vpsim Fcc Lfk Machine
