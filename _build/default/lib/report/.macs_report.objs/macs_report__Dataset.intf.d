lib/report/dataset.mli: Contention Convex_machine Convex_memsys Fcc Machine Macs
