lib/report/tables.mli: Dataset
