lib/report/figures.mli: Dataset
