lib/report/report_doc.mli:
