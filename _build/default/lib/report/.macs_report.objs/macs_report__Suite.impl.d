lib/report/suite.ml: Array Convex_machine Convex_vpsim Fcc Float Job Lfk List Machine Macs Macs_util Measure Printf Store Table
