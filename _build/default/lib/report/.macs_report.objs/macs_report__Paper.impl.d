lib/report/paper.ml: List
