lib/report/figures.ml: Asm Buffer Chart Convex_isa Convex_machine Convex_memsys Convex_vpsim Dataset Fcc Instr Job Lfk List Macs Macs_util Paper Printf Reg Sim String
