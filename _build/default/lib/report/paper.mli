(** Published values from Boyd & Davidson (ISCA 1993), used as the
    reference columns of every reproduced table.

    Tables 4 and 5 are taken verbatim from the paper.  The paper's
    Tables 2 and 3 are partially garbled in our source text; their CPL
    values were reconstructed from Tables 4 and 5 (the reconstruction is
    arithmetically exact — see DESIGN.md §7) and are marked as such.
    Table 5's A/X columns are mapped by physics: the execute-only
    measurement tracks the f-chime bound, the access-only measurement the
    m-chime bound.  The LFK10 row of Table 5 is missing from our source
    text. *)

type kernel_row = {
  id : int;
  flops : int;  (** floating-point operations per iteration *)
  (* Table 4, CPF *)
  t_ma_cpf : float;
  t_mac_cpf : float;
  t_macs_cpf : float;
  t_p_cpf : float;
  (* Table 3 (reconstructed) and Table 5, CPL *)
  t_f : int;
  t_f' : int;
  t_macs_f : float;
  t_m : int;
  t_m' : int;
  t_macs_m : float;
  t_macs_cpl : float;
  t_p_cpl : float;
  ax : (float * float) option;  (** (t_x, t_a) measured, when published *)
}

val rows : kernel_row list
(** In paper order: LFK 1, 2, 3, 4, 6, 7, 8, 9, 10, 12. *)

val row : int -> kernel_row
(** By LFK id; raises [Not_found]. *)

val avg_cpf : float * float * float * float
(** Table 4's AVG row: (MA, MAC, MACS, measured). *)

val hmean_mflops : float * float * float * float
(** Table 4's MFLOPS row: (23.15, 20.19, 17.79, 13.16). *)

val clock_mhz : float

(** Worked example of §3.5 (LFK1): per-chime bound and calibration-loop
    cycles, the 527-cycle chime sum, the 537.54-cycle MACS bound, and the
    545.28-cycle measurement. *)

val lfk1_chime_bounds : float list
val lfk1_chime_calibrations : float list
val lfk1_chime_sum : float
val lfk1_macs_cycles : float
val lfk1_measured_cycles : float

(** Figure 2 reference points. *)

val fig2_chained_cycles : float
val fig2_unchained_cycles : float
val fig2_steady_chime : float
