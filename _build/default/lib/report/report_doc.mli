(** Render the complete artifact set — every reproduced table and figure
    plus the extensions — as a single Markdown document, suitable for
    committing alongside the code or attaching to a report. *)

val sections : unit -> (string * string) list
(** [(title, body)] pairs in presentation order.  Bodies are preformatted
    ASCII (to be fenced in Markdown). *)

val to_markdown : unit -> string

val write_file : string -> unit
