open Convex_machine

(** The full Livermore run: all twelve kernels of the paper's benchmark
    range (ten vectorized, two scalar-mode), executed and verified the way
    the original LFK driver reports — per-kernel rates, output checksums
    against the reference implementations, and the harmonic-mean summary.
    This is the "run the whole benchmark" entry point a user of the
    library reaches for first. *)

type row = {
  kernel : Lfk.Kernel.t;
  mode : Convex_vpsim.Job.mode;
  cpl : float;
  cpf : float;
  mflops : float;
  checksum : float;  (** sum over the kernel's output arrays after the run *)
  checksum_ok : bool;  (** matches the reference implementation's checksum *)
}

type t = {
  machine : Machine.t;
  rows : row list;
  vector_hmean_mflops : float;  (** over the ten vectorized kernels *)
  overall_hmean_mflops : float;  (** over all twelve *)
}

val run : ?machine:Machine.t -> ?opt:Fcc.Opt_level.t -> unit -> t

val render : t -> string

val checksum_of_store : Lfk.Kernel.t -> Convex_vpsim.Store.t -> float
(** Sum of the kernel's output arrays — the LFK-style result signature. *)
