open Convex_machine
open Convex_memsys

(** One full evaluation of the benchmark set: every kernel compiled,
    bounded, and measured.  Computed once and shared by the table and
    figure renderers. *)

type t = {
  machine : Machine.t;
  opt : Fcc.Opt_level.t;
  rows : Macs.Hierarchy.t list;  (** paper order: 1,2,3,4,6,7,8,9,10,12 *)
}

val compute :
  ?machine:Machine.t -> ?contention:Contention.t -> ?opt:Fcc.Opt_level.t ->
  unit -> t

val find : t -> int -> Macs.Hierarchy.t
(** By LFK id; raises [Not_found]. *)

val cpf_columns : t -> float array * float array * float array * float array
(** (MA, MAC, MACS, measured) CPF per kernel, in paper order. *)
