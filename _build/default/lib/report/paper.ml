type kernel_row = {
  id : int;
  flops : int;
  t_ma_cpf : float;
  t_mac_cpf : float;
  t_macs_cpf : float;
  t_p_cpf : float;
  t_f : int;
  t_f' : int;
  t_macs_f : float;
  t_m : int;
  t_m' : int;
  t_macs_m : float;
  t_macs_cpl : float;
  t_p_cpl : float;
  ax : (float * float) option;
}

let rows =
  [
    { id = 1; flops = 5; t_ma_cpf = 0.600; t_mac_cpf = 0.800;
      t_macs_cpf = 0.840; t_p_cpf = 0.852; t_f = 3; t_f' = 3;
      t_macs_f = 3.04; t_m = 3; t_m' = 4; t_macs_m = 4.14;
      t_macs_cpl = 4.20; t_p_cpl = 4.26; ax = Some (3.13, 4.20) };
    { id = 2; flops = 4; t_ma_cpf = 1.250; t_mac_cpf = 1.500;
      t_macs_cpf = 1.566; t_p_cpf = 3.773; t_f = 2; t_f' = 2;
      t_macs_f = 2.03; t_m = 5; t_m' = 6; t_macs_m = 6.22;
      t_macs_cpl = 6.26; t_p_cpl = 15.09; ax = Some (9.05, 13.39) };
    { id = 3; flops = 2; t_ma_cpf = 1.000; t_mac_cpf = 1.000;
      t_macs_cpf = 1.044; t_p_cpf = 1.128; t_f = 1; t_f' = 1;
      t_macs_f = 1.37; t_m = 2; t_m' = 2; t_macs_m = 2.07;
      t_macs_cpl = 2.09; t_p_cpl = 2.26; ax = Some (1.47, 2.07) };
    { id = 4; flops = 2; t_ma_cpf = 1.000; t_mac_cpf = 1.000;
      t_macs_cpf = 1.226; t_p_cpf = 1.863; t_f = 1; t_f' = 2;
      t_macs_f = 2.37; t_m = 2; t_m' = 2; t_macs_m = 2.07;
      t_macs_cpl = 2.45; t_p_cpl = 3.73; ax = Some (2.91, 2.44) };
    { id = 6; flops = 2; t_ma_cpf = 1.000; t_mac_cpf = 1.000;
      t_macs_cpf = 1.226; t_p_cpf = 2.632; t_f = 1; t_f' = 1;
      t_macs_f = 1.37; t_m = 2; t_m' = 2; t_macs_m = 2.07;
      t_macs_cpl = 2.44; t_p_cpl = 5.26; ax = Some (3.74, 3.29) };
    { id = 7; flops = 16; t_ma_cpf = 0.500; t_mac_cpf = 0.625;
      t_macs_cpf = 0.656; t_p_cpf = 0.681; t_f = 8; t_f' = 8;
      t_macs_f = 9.13; t_m = 4; t_m' = 10; t_macs_m = 10.37;
      t_macs_cpl = 10.50; t_p_cpl = 10.89; ax = Some (9.55, 10.35) };
    { id = 8; flops = 36; t_ma_cpf = 0.583; t_mac_cpf = 0.583;
      t_macs_cpf = 0.824; t_p_cpf = 0.858; t_f = 21; t_f' = 21;
      t_macs_f = 21.28; t_m = 15; t_m' = 21; t_macs_m = 21.85;
      t_macs_cpl = 30.15; t_p_cpl = 30.90; ax = Some (22.77, 22.53) };
    { id = 9; flops = 17; t_ma_cpf = 0.647; t_mac_cpf = 0.647;
      t_macs_cpf = 0.679; t_p_cpf = 0.749; t_f = 9; t_f' = 9;
      t_macs_f = 9.13; t_m = 11; t_m' = 11; t_macs_m = 11.41;
      t_macs_cpl = 11.55; t_p_cpl = 12.73; ax = Some (9.61, 11.62) };
    { id = 10; flops = 9; t_ma_cpf = 2.222; t_mac_cpf = 2.222;
      t_macs_cpf = 2.328; t_p_cpf = 2.442; t_f = 9; t_f' = 9;
      t_macs_f = 9.07; t_m = 20; t_m' = 20; t_macs_m = 20.88;
      t_macs_cpl = 20.95; t_p_cpl = 21.98; ax = None };
    { id = 12; flops = 1; t_ma_cpf = 2.000; t_mac_cpf = 3.000;
      t_macs_cpf = 3.132; t_p_cpf = 3.182; t_f = 1; t_f' = 1;
      t_macs_f = 1.01; t_m = 2; t_m' = 3; t_macs_m = 3.12;
      t_macs_cpl = 3.13; t_p_cpl = 3.18; ax = Some (1.05, 3.15) };
  ]

let row id = List.find (fun r -> r.id = id) rows
let avg_cpf = (1.080, 1.238, 1.352, 1.900)
let hmean_mflops = (23.15, 20.19, 17.79, 13.16)
let clock_mhz = 25.0
let lfk1_chime_bounds = [ 131.0; 132.0; 132.0; 132.0 ]
let lfk1_chime_calibrations = [ 131.93; 133.33; 133.33; 132.35 ]
let lfk1_chime_sum = 527.0
let lfk1_macs_cycles = 537.54
let lfk1_measured_cycles = 545.28
let fig2_chained_cycles = 162.0
let fig2_unchained_cycles = 422.0
let fig2_steady_chime = 132.0
