open Convex_machine

type t = {
  machine : Machine.t;
  opt : Fcc.Opt_level.t;
  rows : Macs.Hierarchy.t list;
}

let compute ?(machine = Machine.c240) ?contention ?(opt = Fcc.Opt_level.v61)
    () =
  let rows =
    List.map
      (fun k -> Macs.Hierarchy.analyze ~machine ?contention ~opt k)
      Lfk.Kernels.all
  in
  { machine; opt; rows }

let find t id =
  List.find (fun (h : Macs.Hierarchy.t) -> h.kernel.id = id) t.rows

let cpf_columns t =
  let col f = Array.of_list (List.map f t.rows) in
  ( col Macs.Hierarchy.t_ma_cpf,
    col Macs.Hierarchy.t_mac_cpf,
    col Macs.Hierarchy.t_macs_cpf,
    col Macs.Hierarchy.t_p_cpf )
