open Convex_machine
open Convex_vpsim

type row = {
  kernel : Lfk.Kernel.t;
  mode : Job.mode;
  cpl : float;
  cpf : float;
  mflops : float;
  checksum : float;
  checksum_ok : bool;
}

type t = {
  machine : Machine.t;
  rows : row list;
  vector_hmean_mflops : float;
  overall_hmean_mflops : float;
}

let checksum_of_store (k : Lfk.Kernel.t) store =
  List.fold_left
    (fun acc name ->
      Array.fold_left ( +. ) acc (Store.get store name))
    0.0
    (Lfk.Reference.output_arrays k)

let run_kernel machine opt (k : Lfk.Kernel.t) =
  let c = Fcc.Compiler.compile ~opt k in
  let layout = Macs.Hierarchy.layout_of c in
  let m =
    Measure.run ~machine ~layout ~flops_per_iteration:c.flops_per_iteration
      c.job
  in
  let got = Fcc.Compiler.run_interp c in
  let want = Lfk.Data.store_of k in
  Lfk.Reference.run k want;
  let checksum = checksum_of_store k got in
  let expected = checksum_of_store k want in
  let checksum_ok =
    Float.abs (checksum -. expected)
    <= 1e-9 *. (Float.abs expected +. 1.0)
  in
  {
    kernel = k;
    mode = c.mode;
    cpl = m.Measure.cpl;
    cpf = m.Measure.cpf;
    mflops = m.Measure.mflops;
    checksum;
    checksum_ok;
  }

let run ?(machine = Machine.c240) ?(opt = Fcc.Opt_level.v61) () =
  let kernels = Lfk.Kernels.all @ Lfk.Kernels.scalar_kernels in
  let kernels =
    List.sort (fun (a : Lfk.Kernel.t) b -> compare a.id b.id) kernels
  in
  let rows = List.map (run_kernel machine opt) kernels in
  let hmean sel =
    let cpfs =
      rows |> List.filter sel |> List.map (fun r -> r.cpf) |> Array.of_list
    in
    Macs.Units.hmean_mflops ~clock_mhz:machine.Machine.clock_mhz
      ~cpf_values:cpfs
  in
  {
    machine;
    rows;
    vector_hmean_mflops = hmean (fun r -> r.mode = Job.Vector);
    overall_hmean_mflops = hmean (fun _ -> true);
  }

let render t =
  let open Macs_util in
  let tbl =
    Table.create
      ~header:
        [ "LFK"; "mode"; "CPL"; "CPF"; "MFLOPS"; "checksum"; "verified" ]
      ()
  in
  List.iter
    (fun r ->
      Table.add_row tbl
        [
          Table.cell_int r.kernel.id;
          (match r.mode with Job.Vector -> "vector" | Job.Scalar -> "scalar");
          Table.cell_float ~decimals:3 r.cpl;
          Table.cell_float ~decimals:3 r.cpf;
          Table.cell_float ~decimals:2 r.mflops;
          Printf.sprintf "%.6e" r.checksum;
          (if r.checksum_ok then "ok" else "MISMATCH");
        ])
    t.rows;
  Printf.sprintf
    "Livermore suite on the simulated %s\n%s\n\nharmonic-mean MFLOPS: \
     %.2f over the ten vectorized kernels, %.2f over all twelve\n"
    t.machine.Machine.name (Table.render tbl) t.vector_hmean_mflops
    t.overall_hmean_mflops
