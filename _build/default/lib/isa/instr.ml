type mem = { array : string; offset : int; stride : int } [@@deriving show, eq]

type vsrc = Vr of Reg.v | Sr of Reg.s [@@deriving show, eq]
type vbinop = Add | Sub | Mul | Div [@@deriving show, eq]
type cmpop = Lt | Le | Eq | Ne [@@deriving show, eq]

type t =
  | Vld of { dst : Reg.v; src : mem }
  | Vst of { src : Reg.v; dst : mem }
  | Vbin of { op : vbinop; dst : Reg.v; src1 : vsrc; src2 : vsrc }
  | Vneg of { dst : Reg.v; src : Reg.v }
  | Vsqrt of { dst : Reg.v; src : Reg.v }
  | Vcmp of { op : cmpop; src1 : Reg.v; src2 : vsrc }
  | Vmerge of { dst : Reg.v; src_true : vsrc; src_false : vsrc }
  | Vgather of { dst : Reg.v; base : mem; index : Reg.v }
  | Vscatter of { src : Reg.v; base : mem; index : Reg.v }
  | Vsum of { dst : Reg.s; src : Reg.v }
  | Sld of { dst : Reg.s; src : mem }
  | Sst of { src : Reg.s; dst : mem }
  | Sbin of { op : vbinop; dst : Reg.s; src1 : Reg.s; src2 : Reg.s }
  | Sop of { name : string }
  | Smovvl
  | Sbranch
[@@deriving show, eq]

type vclass =
  | Cld
  | Cst
  | Cadd
  | Csub
  | Cmul
  | Cdiv
  | Csqrt
  | Csum
  | Cneg
  | Ccmp
  | Cmerge
[@@deriving show, eq]

let all_vclasses =
  [ Cld; Cst; Cadd; Csub; Cmul; Cdiv; Csqrt; Csum; Cneg; Ccmp; Cmerge ]

let vclass_of = function
  | Vld _ -> Some Cld
  | Vst _ -> Some Cst
  | Vbin { op = Add; _ } -> Some Cadd
  | Vbin { op = Sub; _ } -> Some Csub
  | Vbin { op = Mul; _ } -> Some Cmul
  | Vbin { op = Div; _ } -> Some Cdiv
  | Vneg _ -> Some Cneg
  | Vsqrt _ -> Some Csqrt
  | Vcmp _ -> Some Ccmp
  | Vmerge _ -> Some Cmerge
  | Vgather _ -> Some Cld
  | Vscatter _ -> Some Cst
  | Vsum _ -> Some Csum
  | Sld _ | Sst _ | Sbin _ | Sop _ | Smovvl | Sbranch -> None

let is_vector i = Option.is_some (vclass_of i)
let is_scalar i = not (is_vector i)

let is_vector_memory = function
  | Vld _ | Vst _ | Vgather _ | Vscatter _ -> true
  | _ -> false
let is_scalar_memory = function Sld _ | Sst _ -> true | _ -> false
let is_memory i = is_vector_memory i || is_scalar_memory i
let is_vector_fp = function
  | Vbin _ | Vneg _ | Vsqrt _ | Vsum _ | Vcmp _ | Vmerge _ -> true
  | _ -> false

let reads_of_vsrc = function Vr r -> [ r ] | Sr _ -> []

let reads_v = function
  | Vld _ -> []
  | Vst { src; _ } -> [ src ]
  | Vcmp { src1; src2; _ } -> src1 :: reads_of_vsrc src2
  | Vmerge { src_true; src_false; _ } ->
      reads_of_vsrc src_true @ reads_of_vsrc src_false
  | Vgather { index; _ } -> [ index ]
  | Vscatter { src; index; _ } -> [ src; index ]
  | Vbin { src1; src2; _ } -> reads_of_vsrc src1 @ reads_of_vsrc src2
  | Vneg { src; _ } -> [ src ]
  | Vsqrt { src; _ } -> [ src ]
  | Vsum { src; _ } -> [ src ]
  | Sld _ | Sst _ | Sbin _ | Sop _ | Smovvl | Sbranch -> []

let writes_v = function
  | Vld { dst; _ } -> [ dst ]
  | Vmerge { dst; _ } -> [ dst ]
  | Vgather { dst; _ } -> [ dst ]
  | Vbin { dst; _ } -> [ dst ]
  | Vneg { dst; _ } -> [ dst ]
  | Vsqrt { dst; _ } -> [ dst ]
  | Vst _ | Vscatter _ | Vcmp _ | Vsum _ | Sld _ | Sst _ | Sbin _ | Sop _
  | Smovvl | Sbranch ->
      []

let sreads_of_vsrc = function Vr _ -> [] | Sr r -> [ r ]

let reads_s = function
  | Vbin { src1; src2; _ } -> sreads_of_vsrc src1 @ sreads_of_vsrc src2
  | Vcmp { src2; _ } -> sreads_of_vsrc src2
  | Vmerge { src_true; src_false; _ } ->
      sreads_of_vsrc src_true @ sreads_of_vsrc src_false
  | Sst { src; _ } -> [ src ]
  | Sbin { src1; src2; _ } -> [ src1; src2 ]
  | Vld _ | Vst _ | Vgather _ | Vscatter _ | Vneg _ | Vsqrt _ | Vsum _
  | Sld _ | Sop _ | Smovvl | Sbranch ->
      []

let writes_s = function
  | Vsum { dst; _ } -> [ dst ]
  | Sld { dst; _ } -> [ dst ]
  | Sbin { dst; _ } -> [ dst ]
  | Vld _ | Vst _ | Vgather _ | Vscatter _ | Vbin _ | Vneg _ | Vsqrt _
  | Vcmp _ | Vmerge _ | Sst _ | Sop _ | Smovvl | Sbranch ->
      []

let mem_ref = function
  | Vld { src; _ } -> Some src
  | Vst { dst; _ } -> Some dst
  | Vgather { base; _ } -> Some base
  | Vscatter { base; _ } -> Some base
  | Sld { src; _ } -> Some src
  | Sst { dst; _ } -> Some dst
  | Vbin _ | Vneg _ | Vsqrt _ | Vsum _ | Vcmp _ | Vmerge _ | Sbin _ | Sop _
  | Smovvl | Sbranch ->
      None

let flop_count = function
  | Vbin _ | Vsqrt _ | Vsum _ -> 1
  | Vld _ | Vst _ | Vgather _ | Vscatter _ | Vneg _ | Vcmp _ | Vmerge _
  | Sld _ | Sst _ | Sbin _ | Sop _ | Smovvl | Sbranch ->
      0

let writes_merge = function Vcmp _ -> true | _ -> false
let reads_merge = function Vmerge _ -> true | _ -> false
