(** Instructions of the modeled Convex C-240 CPU.

    The instruction set covers what the paper's case study exercises: vector
    loads and stores through the single memory port, vector adds/subtracts/
    negations (add pipe), multiplies and divides (multiply pipe), the vector
    sum reduction, and the scalar instructions that appear in compiled inner
    loops (scalar loads/stores, loop-control ALU operations, the [mov s0,VL]
    strip-length move, and the closing conditional branch).

    A {e vector instruction} is any instruction that touches a vector
    register (paper §3.5); everything else is scalar and executes in the
    Address/Scalar Unit. *)

(** A memory operand.  Arrays are symbolic; element [i] of a strip whose
    base index is [k0] addresses word [offset + (k0 + i) * stride] of
    [array].  Scalar accesses use the operand as a single word at
    [offset + k0 * stride]. *)
type mem = { array : string; offset : int; stride : int }

val pp_mem : Format.formatter -> mem -> unit
val show_mem : mem -> string
val equal_mem : mem -> mem -> bool

(** Source operand of a vector arithmetic instruction: either a vector
    register or a scalar register broadcast across all elements. *)
type vsrc = Vr of Reg.v | Sr of Reg.s

val pp_vsrc : Format.formatter -> vsrc -> unit
val equal_vsrc : vsrc -> vsrc -> bool

type vbinop = Add | Sub | Mul | Div

val pp_vbinop : Format.formatter -> vbinop -> unit
val equal_vbinop : vbinop -> vbinop -> bool

type cmpop = Lt | Le | Eq | Ne

val pp_cmpop : Format.formatter -> cmpop -> unit
val equal_cmpop : cmpop -> cmpop -> bool

type t =
  | Vld of { dst : Reg.v; src : mem }
  | Vst of { src : Reg.v; dst : mem }
  | Vbin of { op : vbinop; dst : Reg.v; src1 : vsrc; src2 : vsrc }
  | Vneg of { dst : Reg.v; src : Reg.v }
  | Vsqrt of { dst : Reg.v; src : Reg.v }
      (** Square root, executed by the multiply pipe's iterative unit
          (paper §2). *)
  | Vcmp of { op : cmpop; src1 : Reg.v; src2 : vsrc }
      (** Element-wise comparison writing the (single) vector merge
          register; executes on the add pipe (§2: "logical functions"). *)
  | Vmerge of { dst : Reg.v; src_true : vsrc; src_false : vsrc }
      (** Per-element select under the vector merge register; a "vector
          edit", executed by the multiply pipe (§2). *)
  | Vgather of { dst : Reg.v; base : mem; index : Reg.v }
      (** Indexed load: element [e] reads
          [base.array\[base.offset + int_of_float index\[e\]\]]; the
          base's stride is ignored.  Runs on the load/store pipe with
          load timing. *)
  | Vscatter of { src : Reg.v; base : mem; index : Reg.v }
      (** Indexed store, the dual of {!Vgather}; store timing. *)
  | Vsum of { dst : Reg.s; src : Reg.v }
      (** Sum reduction of a vector register into a scalar register. *)
  | Sld of { dst : Reg.s; src : mem }
  | Sst of { src : Reg.s; dst : mem }
  | Sbin of { op : vbinop; dst : Reg.s; src1 : Reg.s; src2 : Reg.s }
      (** Scalar floating-point ALU operation with real register
          dependences; used for scalar accumulation of reduction partials
          and for outer-loop scalar arithmetic. *)
  | Sop of { name : string }
      (** Opaque one-cycle scalar ALU operation (address increments,
          compares); carries a mnemonic for listings only. *)
  | Smovvl  (** [mov s0,VL]: sets the vector length for the strip. *)
  | Sbranch  (** Conditional branch closing the strip-mined loop. *)

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool

(** {1 Classification} *)

(** Timing class of a vector instruction; keys into the machine's X/Y/Z/B
    table (paper Table 1). *)
type vclass =
  | Cld
  | Cst
  | Cadd
  | Csub
  | Cmul
  | Cdiv
  | Csqrt
  | Csum
  | Cneg
  | Ccmp
  | Cmerge

val pp_vclass : Format.formatter -> vclass -> unit
val show_vclass : vclass -> string
val equal_vclass : vclass -> vclass -> bool
val all_vclasses : vclass list

val vclass_of : t -> vclass option
(** [None] for scalar instructions. *)

val is_vector : t -> bool
(** True iff the instruction accesses at least one vector register. *)

val is_scalar : t -> bool

val is_vector_memory : t -> bool
(** Vector load or store. *)

val is_scalar_memory : t -> bool
(** Scalar load or store — these compete for the same single memory port
    and terminate chimes that contain vector memory accesses. *)

val is_memory : t -> bool

val is_vector_fp : t -> bool
(** Vector floating-point operation: arithmetic, negation, or reduction.
    These are the operations removed to form the A-process. *)

val reads_v : t -> Reg.v list
(** Vector registers read, in operand order (duplicates preserved: an
    instruction reading [v2] twice performs two reads of its pair). *)

val writes_v : t -> Reg.v list

val reads_s : t -> Reg.s list
val writes_s : t -> Reg.s list

val mem_ref : t -> mem option

val writes_merge : t -> bool
(** Writes the vector merge register ([Vcmp]). *)

val reads_merge : t -> bool
(** Reads the vector merge register ([Vmerge]). *)

val flop_count : t -> int
(** Floating-point arithmetic operations contributed per element: 1 for
    vector add/sub/mul/div and sum, 0 otherwise (negation is not counted
    as a flop, matching the paper's f-counts). *)
