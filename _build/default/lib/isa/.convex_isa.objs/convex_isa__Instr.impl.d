lib/isa/instr.pp.ml: Option Ppx_deriving_runtime Reg
