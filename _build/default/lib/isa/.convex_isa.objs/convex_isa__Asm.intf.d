lib/isa/asm.pp.mli: Instr Program
