lib/isa/program.pp.ml: Format Hashtbl Instr List Option Reg String
