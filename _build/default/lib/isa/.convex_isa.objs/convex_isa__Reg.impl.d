lib/isa/reg.pp.ml: Format Fun Int List Printf
