lib/isa/asm.pp.ml: Buffer Char Instr List Printf Program Reg Result String
