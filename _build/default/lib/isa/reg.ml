type v = int
type s = int
type a = int

let vector_count = 8
let scalar_count = 8
let address_count = 8
let pair_count = 4

let check name limit i =
  if i < 0 || i >= limit then
    invalid_arg (Printf.sprintf "Reg.%s: index %d out of range" name i)

let v i =
  check "v" vector_count i;
  i

let s i =
  check "s" scalar_count i;
  i

let a i =
  check "a" address_count i;
  i

let v_index r = r
let s_index r = r
let a_index r = r

(* {v0,v4} {v1,v5} {v2,v6} {v3,v7}: the pair id is the index modulo 4. *)
let pair_id r = r mod pair_count
let all_v = List.init vector_count Fun.id
let all_s = List.init scalar_count Fun.id
let all_a = List.init address_count Fun.id
let pp_v fmt r = Format.fprintf fmt "v%d" r
let pp_s fmt r = Format.fprintf fmt "s%d" r
let pp_a fmt r = Format.fprintf fmt "a%d" r
let equal_v = Int.equal
let equal_s = Int.equal
let equal_a = Int.equal
let compare_v = Int.compare
let show_v r = Printf.sprintf "v%d" r
let show_s r = Printf.sprintf "s%d" r
let show_a r = Printf.sprintf "a%d" r
