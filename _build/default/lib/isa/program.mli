(** An inner-loop body: the unit of analysis for both the MACS bounds and
    the simulator.

    A program holds the instructions of {e one iteration} of a strip-mined
    vectorized inner loop, in schedule order: typically a [Smovvl], the
    vector body, then scalar loop control ending in [Sbranch].  The MACS
    model analyses the vector instructions; the simulator executes the whole
    body repeatedly. *)

type t = private { name : string; body : Instr.t list }

val make : name:string -> Instr.t list -> t
(** Raises [Invalid_argument] if [body] is empty. *)

val name : t -> string
val body : t -> Instr.t list
val length : t -> int

val vector_instrs : t -> Instr.t list
(** The vector instructions, in program order. *)

val scalar_instrs : t -> Instr.t list

val count : (Instr.t -> bool) -> t -> int
(** Number of body instructions satisfying a predicate. *)

val arrays : t -> string list
(** Distinct array names referenced, sorted. *)

val live_in_v : t -> Reg.v list
(** Vector registers read before being written — the registers the
    X-process generator must prime (paper §3.6). *)

val live_in_s : t -> Reg.s list

val map_body : (Instr.t list -> Instr.t list) -> t -> t
(** Rebuild the program with a transformed body (used by the A/X
    transforms).  The result keeps the same name with a suffix supplied by
    the caller via {!rename}. *)

val rename : string -> t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Multi-line listing, one instruction per line. *)
