(** Register files of the Convex C-240 CPU.

    Each CPU has eight 128-element vector registers [v0]..[v7] in the Vector
    Processor, and scalar ([s0]..[s7]) plus address ([a0]..[a7]) registers in
    the Address/Scalar Unit.  Vector registers are organised in four
    {e register pairs} — \{v0,v4\}, \{v1,v5\}, \{v2,v6\}, \{v3,v7\} — and the
    hardware permits at most two reads and one write to each pair during a
    single chime (paper §3.3). *)

type v
(** A vector register. *)

type s
(** A scalar register. *)

type a
(** An address register. *)

val vector_count : int
(** Number of vector registers (8). *)

val scalar_count : int
val address_count : int

val v : int -> v
(** [v i] is vector register [i]; raises [Invalid_argument] unless
    [0 <= i < vector_count]. *)

val s : int -> s
val a : int -> a

val v_index : v -> int
val s_index : s -> int
val a_index : a -> int

val pair_id : v -> int
(** Register-pair identifier in [0;3]: [v0]/[v4] map to 0, [v1]/[v5] to 1,
    and so on. *)

val pair_count : int
(** Number of vector register pairs (4). *)

val all_v : v list
(** [v0; ...; v7] in index order. *)

val all_s : s list
val all_a : a list

val pp_v : Format.formatter -> v -> unit
(** Prints ["v3"] style. *)

val pp_s : Format.formatter -> s -> unit
val pp_a : Format.formatter -> a -> unit

val equal_v : v -> v -> bool
val equal_s : s -> s -> bool
val equal_a : a -> a -> bool
val compare_v : v -> v -> int
val show_v : v -> string
val show_s : s -> string
val show_a : a -> string
