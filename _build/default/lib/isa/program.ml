type t = { name : string; body : Instr.t list }

let make ~name body =
  if body = [] then invalid_arg "Program.make: empty body";
  { name; body }

let name t = t.name
let body t = t.body
let length t = List.length t.body
let vector_instrs t = List.filter Instr.is_vector t.body
let scalar_instrs t = List.filter Instr.is_scalar t.body

let count pred t =
  List.fold_left (fun acc i -> if pred i then acc + 1 else acc) 0 t.body

let arrays t =
  let names =
    List.filter_map
      (fun i -> Option.map (fun (m : Instr.mem) -> m.array) (Instr.mem_ref i))
      t.body
  in
  List.sort_uniq String.compare names

(* Registers read before any write, scanning in program order. *)
let live_in reads writes index t =
  let written = Hashtbl.create 8 in
  let live = ref [] in
  List.iter
    (fun i ->
      List.iter
        (fun r ->
          if
            (not (Hashtbl.mem written (index r)))
            && not (List.exists (fun r' -> index r' = index r) !live)
          then live := r :: !live)
        (reads i);
      List.iter (fun r -> Hashtbl.replace written (index r) ()) (writes i))
    t.body;
  List.rev !live

let live_in_v t = live_in Instr.reads_v Instr.writes_v Reg.v_index t
let live_in_s t = live_in Instr.reads_s Instr.writes_s Reg.s_index t

let map_body f t =
  let body = f t.body in
  if body = [] then invalid_arg "Program.map_body: transform emptied body";
  { t with body }

let rename name t = { t with name }

let equal t1 t2 =
  String.equal t1.name t2.name && List.equal Instr.equal t1.body t2.body

let pp fmt t =
  Format.fprintf fmt "@[<v>%s:" t.name;
  List.iter (fun i -> Format.fprintf fmt "@,  %a" Instr.pp i) t.body;
  Format.fprintf fmt "@]"
