open Convex_machine

(** Whole-application aggregation.

    The paper evaluates kernels one at a time and summarizes with a
    harmonic mean; a real tuning session cares about an {e application} —
    a weighted mix of loops.  This module aggregates the hierarchy over a
    mix: each component kernel is weighted by its invocation count, time
    shares follow from the measured CPL, and the advisor's per-kernel
    suggestions are re-ranked by absolute application time saved (a 30%
    win on a loop worth 2% of run time loses to a 5% win on a loop worth
    60%). *)

type component = {
  kernel : Lfk.Kernel.t;
  invocations : float;  (** relative execution count of the whole loop *)
  hierarchy : Hierarchy.t;
  time : float;  (** invocations x elements x CPL, arbitrary units *)
  share : float;  (** fraction of total application time *)
}

type t = {
  machine : Machine.t;
  components : component list;  (** sorted by share, largest first *)
  total_time : float;
  mflops : float;  (** aggregate: total flops / total time x clock *)
}

type weighted_suggestion = {
  kernel_name : string;
  suggestion : Advisor.suggestion;
  application_gain : float;
      (** fraction of whole-application time saved *)
}

val analyze :
  ?machine:Machine.t -> (Lfk.Kernel.t * float) list -> t
(** [(kernel, invocations)] pairs; raises [Invalid_argument] on an empty
    mix or nonpositive weights. *)

val advise : ?threshold:float -> t -> weighted_suggestion list
(** Application-level advice, sorted by [application_gain] (default
    threshold 0.005 of total time). *)

val render : t -> string
(** Profile table plus the top application-level advice. *)
