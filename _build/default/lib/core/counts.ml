open Convex_isa

type t = { f_a : int; f_m : int; loads : int; stores : int }
[@@deriving show, eq]

let ma_of_kernel (k : Lfk.Kernel.t) =
  let f_a, f_m = Lfk.Ir.op_counts k.body in
  (* selects are not flops but occupy the pipes: the comparison runs on
     the add pipe, the merge (vector edit) on the multiply pipe *)
  let selects = Lfk.Ir.select_count k.body in
  {
    f_a = f_a + selects;
    f_m = f_m + selects;
    loads = Lfk.Ir.ma_load_count k.body;
    stores = Lfk.Ir.ma_store_count k.body;
  }

let mac_of_instrs instrs =
  let count pred = List.length (List.filter pred instrs) in
  {
    f_a =
      count (fun i ->
          match Instr.vclass_of i with
          | Some (Cadd | Csub | Csum | Ccmp) -> true
          | _ -> false);
    f_m =
      count (fun i ->
          match Instr.vclass_of i with
          | Some (Cmul | Cdiv | Csqrt | Cmerge) -> true
          | _ -> false);
    loads =
      count (fun i -> Instr.vclass_of i = Some Instr.Cld);
    stores =
      count (fun i -> Instr.vclass_of i = Some Instr.Cst);
  }

let mac_of_program p = mac_of_instrs (Program.body p)

let t_f c = max c.f_a c.f_m
let t_m c = c.loads + c.stores
let t_bound c = max (t_f c) (t_m c)
