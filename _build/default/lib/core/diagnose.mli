(** Automated gap diagnosis (paper §4.4).

    The paper reads the hierarchy of bounds and measurements to name, for
    each kernel, the factors that keep delivered performance below
    deliverable performance.  This module encodes those readings as rules
    over a {!Hierarchy.t}:

    - a MA→MAC gap means the compiler inserted operations (reloads of
      shifted reuse streams);
    - a MAC→MACS gap means schedule-specific effects: bubbles, refresh,
      and — when t_MACS far exceeds both t_MACS^f and t_MACS^m — chimes
      split by scalar memory accesses (LFK8);
    - a MACS→t_p gap means unmodeled run time: short vectors exposing
      start-up, outer-loop scalar code, memory dependences between passes;
    - t_p near max(t_a, t_x) with the two far apart means one process
      dominates; t_p well above both means poor access–execute overlap;
    - t_x far above t_MACS^f in a reduction kernel points at the
      reduction–memory interaction (LFK4/6). *)

type issue =
  | Compiler_inserted_ops of { extra_memory_ops : int }
  | Schedule_effects of { macs_over_mac : float }
  | Chime_splitting of { split_chimes : int }
  | Short_vector_startup of { average_vl : float }
  | Outer_loop_overhead
  | Reduction_serialization
  | Poor_overlap of { overlap_excess : float }
  | Access_bound
  | Execute_bound
  | Well_modeled of { macs_coverage : float }

val issue_name : issue -> string
val describe : issue -> string

val diagnose : Hierarchy.t -> issue list
(** Issues in decreasing order of estimated impact; always nonempty (a
    kernel with no significant gaps reports [Well_modeled]). *)

val report : Hierarchy.t -> string
(** Multi-line human-readable diagnosis, in the style of the paper's
    per-kernel commentary. *)
