open Convex_machine

(** Hockney's (r∞, n½) characterization.

    The standard 1980s description of a vector machine's behaviour on a
    loop: time for an n-element run is modeled as t(n) ≈ t₀ + n/r, giving
    an asymptotic rate r∞ and the half-performance length n½ = t₀·r∞ —
    the vector length at which half the asymptotic rate is reached.  It
    complements the MACS hierarchy: r∞ should converge to the MACS
    bound's steady-state rate, while n½ quantifies the start-up the MACS
    model deliberately ignores (and which dominates the short-vector
    kernels LFK2/4/6).

    The fit runs the kernel's inner loop at several lengths within one
    strip (n ≤ VL, so no strip-mining discontinuity) on the simulator. *)

type t = {
  r_inf_mflops : float;  (** asymptotic rate from the fit *)
  n_half : float;  (** half-performance vector length *)
  startup_cycles : float;  (** t₀ of the fit *)
  cycles_per_element : float;  (** 1/r in cycles *)
  samples : (int * float) list;  (** (n, total cycles) measured *)
}

val measure :
  ?machine:Machine.t -> ?lengths:int list -> Lfk.Kernel.t -> t
(** Fit over the given lengths (default 8, 16, 24, …, 128; all must be in
    [1; max VL]).  The kernel's first segment supplies the address
    shifts; multi-segment structure is ignored for the sweep (this is a
    single-inner-loop characterization). *)

val macs_rate_mflops : ?machine:Machine.t -> Lfk.Kernel.t -> float
(** The MACS bound's steady-state rate, for comparison with [r_inf]. *)

val render : ?machine:Machine.t -> Lfk.Kernel.t list -> string
(** Table of r∞ / n½ per kernel against the MACS steady-state rate. *)
