let cpf_of_cpl ~cpl ~flops =
  if flops <= 0 then invalid_arg "Units.cpf_of_cpl: nonpositive flops";
  cpl /. float_of_int flops

let cpl_of_cpf ~cpf ~flops =
  if flops <= 0 then invalid_arg "Units.cpl_of_cpf: nonpositive flops";
  cpf *. float_of_int flops

let mflops ~clock_mhz ~cpf =
  if cpf <= 0.0 then invalid_arg "Units.mflops: nonpositive cpf";
  clock_mhz /. cpf

let hmean_mflops ~clock_mhz ~cpf_values =
  mflops ~clock_mhz ~cpf:(Macs_util.Stats.mean cpf_values)

let percent_of_bound ~bound ~measured =
  if measured <= 0.0 then
    invalid_arg "Units.percent_of_bound: nonpositive measurement";
  bound /. measured
