type issue =
  | Compiler_inserted_ops of { extra_memory_ops : int }
  | Schedule_effects of { macs_over_mac : float }
  | Chime_splitting of { split_chimes : int }
  | Short_vector_startup of { average_vl : float }
  | Outer_loop_overhead
  | Reduction_serialization
  | Poor_overlap of { overlap_excess : float }
  | Access_bound
  | Execute_bound
  | Well_modeled of { macs_coverage : float }

let issue_name = function
  | Compiler_inserted_ops _ -> "compiler-inserted operations"
  | Schedule_effects _ -> "schedule effects"
  | Chime_splitting _ -> "chime splitting by scalar memory"
  | Short_vector_startup _ -> "short-vector start-up"
  | Outer_loop_overhead -> "outer-loop overhead"
  | Reduction_serialization -> "reduction serialization"
  | Poor_overlap _ -> "poor access-execute overlap"
  | Access_bound -> "access-bound"
  | Execute_bound -> "execute-bound"
  | Well_modeled _ -> "well modeled"

let describe = function
  | Compiler_inserted_ops { extra_memory_ops } ->
      Printf.sprintf
        "the compiler inserted %d extra memory operation(s) per iteration \
         (reloads of reuse streams shifted by the loop increment)"
        extra_memory_ops
  | Schedule_effects { macs_over_mac } ->
      Printf.sprintf
        "the specific schedule costs %.1f%% over the MAC bound (tailgate \
         bubbles, memory refresh, imperfect chime packing)"
        ((macs_over_mac -. 1.0) *. 100.0)
  | Chime_splitting { split_chimes } ->
      Printf.sprintf
        "%d chime(s) per iteration are split by scalar loads/stores \
         competing for the memory port, so vector instructions overlap \
         poorly (the LFK8 effect)"
        split_chimes
  | Short_vector_startup { average_vl } ->
      Printf.sprintf
        "average vector length is only %.1f, so pipeline start-up (X and Y) \
         is exposed on every strip"
        average_vl
  | Outer_loop_overhead ->
      "outer-loop scalar code runs between inner-loop instances and is not \
       modeled by the inner-loop bounds"
  | Reduction_serialization ->
      "the vector reduction drains at Z > 1 and its scalar result \
       serializes against the next loop instance"
  | Poor_overlap { overlap_excess } ->
      Printf.sprintf
        "t_p exceeds max(t_a, t_x) by %.2f CPL: the access and execute \
         processes overlap poorly"
        overlap_excess
  | Access_bound ->
      "the access process dominates: optimization should target memory \
       traffic first"
  | Execute_bound ->
      "the execute process dominates: optimization should target the \
       floating-point work first"
  | Well_modeled { macs_coverage } ->
      Printf.sprintf
        "the MACS bound explains %.1f%% of measured time; the schedule is \
         close to its deliverable performance"
        (macs_coverage *. 100.0)

let average_vl (h : Hierarchy.t) =
  let elements = Lfk.Kernel.total_elements h.kernel in
  let strips =
    Convex_vpsim.Job.strip_count h.compiled.Fcc.Compiler.job
      ~max_vl:h.machine.Convex_machine.Machine.max_vl
  in
  float_of_int elements /. float_of_int (max 1 strips)

let diagnose (h : Hierarchy.t) =
  let open Convex_vpsim in
  let macs = h.t_macs.Macs_bound.cpl in
  let p = h.t_p.Measure.cpl
  and a = h.t_a.Measure.cpl
  and x = h.t_x.Measure.cpl in
  let issues = ref [] in
  let add impact issue = issues := (impact, issue) :: !issues in
  (* MA -> MAC: compiler-inserted work *)
  let extra =
    Counts.t_m h.mac - Counts.t_m h.ma + (Counts.t_f h.mac - Counts.t_f h.ma)
  in
  if h.t_mac > h.t_ma +. 1e-9 then
    add (h.t_mac -. h.t_ma) (Compiler_inserted_ops { extra_memory_ops = extra });
  (* MAC -> MACS: schedule *)
  if macs > h.t_mac *. 1.02 then
    add (macs -. h.t_mac) (Schedule_effects { macs_over_mac = macs /. h.t_mac });
  let splits =
    let flagged =
      List.length
        (List.filter
           (fun (cc : Macs_bound.chime_cost) ->
             cc.chime.Chime.split_by_scalar_memory)
           h.t_macs.Macs_bound.chimes)
    in
    let scalar_mem =
      Convex_isa.Program.count Convex_isa.Instr.is_scalar_memory
        h.compiled.Fcc.Compiler.program
    in
    max flagged scalar_mem
  in
  if
    splits > 0
    && macs
       > 1.05 *. Float.max h.t_macs_f.Macs_bound.cpl h.t_macs_m.Macs_bound.cpl
  then
    add
      (macs
      -. Float.max h.t_macs_f.Macs_bound.cpl h.t_macs_m.Macs_bound.cpl)
      (Chime_splitting { split_chimes = splits });
  (* MACS -> t_p: unmodeled activity *)
  let coverage = macs /. p in
  if coverage < 0.9 then begin
    let avl = average_vl h in
    if avl < 64.0 then
      add (p -. macs) (Short_vector_startup { average_vl = avl });
    if h.kernel.outer_ops > 0 then add ((p -. macs) /. 2.0) Outer_loop_overhead;
    if
      Lfk.Kernel.has_reduction h.kernel
      && x > 1.15 *. h.t_macs_f.Macs_bound.cpl
    then add ((p -. macs) /. 2.0) Reduction_serialization
  end;
  (* overlap and dominance *)
  let overlap_excess = p -. Float.max a x in
  if overlap_excess > 0.1 *. p then
    add overlap_excess (Poor_overlap { overlap_excess });
  if a > 1.3 *. x then add (a /. 20.0) Access_bound
  else if x > 1.3 *. a then add (x /. 20.0) Execute_bound;
  let sorted =
    List.sort (fun (i1, _) (i2, _) -> Float.compare i2 i1) !issues
  in
  match sorted with
  | [] -> [ Well_modeled { macs_coverage = coverage } ]
  | l -> List.map snd l

let report h =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%s: %s\n" h.Hierarchy.kernel.name
       h.Hierarchy.kernel.description);
  List.iter
    (fun issue ->
      Buffer.add_string buf
        (Printf.sprintf "  - [%s] %s\n" (issue_name issue) (describe issue)))
    (diagnose h);
  Buffer.contents buf
