open Convex_machine

type component = {
  kernel : Lfk.Kernel.t;
  invocations : float;
  hierarchy : Hierarchy.t;
  time : float;
  share : float;
}

type t = {
  machine : Machine.t;
  components : component list;
  total_time : float;
  mflops : float;
}

type weighted_suggestion = {
  kernel_name : string;
  suggestion : Advisor.suggestion;
  application_gain : float;
}

let analyze ?(machine = Machine.c240) mix =
  if mix = [] then invalid_arg "Application.analyze: empty mix";
  List.iter
    (fun (_, w) ->
      if w <= 0.0 then invalid_arg "Application.analyze: nonpositive weight")
    mix;
  let partial =
    List.map
      (fun (kernel, invocations) ->
        let hierarchy = Hierarchy.analyze ~machine kernel in
        let elements = float_of_int (Lfk.Kernel.total_elements kernel) in
        let time =
          invocations *. elements *. hierarchy.Hierarchy.t_p.Convex_vpsim.Measure.cpl
        in
        (kernel, invocations, hierarchy, time))
      mix
  in
  let total_time =
    List.fold_left (fun acc (_, _, _, t) -> acc +. t) 0.0 partial
  in
  let total_flops =
    List.fold_left
      (fun acc (k, w, _, _) ->
        acc
        +. (w
           *. float_of_int (Lfk.Kernel.total_elements k)
           *. float_of_int (Lfk.Kernel.flops k)))
      0.0 partial
  in
  let components =
    partial
    |> List.map (fun (kernel, invocations, hierarchy, time) ->
           { kernel; invocations; hierarchy; time;
             share = time /. total_time })
    |> List.sort (fun a b -> Float.compare b.share a.share)
  in
  {
    machine;
    components;
    total_time;
    mflops = machine.clock_mhz *. total_flops /. total_time;
  }

let advise ?(threshold = 0.005) t =
  t.components
  |> List.concat_map (fun c ->
         List.map
           (fun (s : Advisor.suggestion) ->
             {
               kernel_name = c.kernel.Lfk.Kernel.name;
               suggestion = s;
               application_gain = s.Advisor.gain *. c.share;
             })
           (Advisor.advise ~machine:t.machine c.kernel))
  |> List.filter (fun ws -> ws.application_gain > threshold)
  |> List.sort (fun a b ->
         Float.compare b.application_gain a.application_gain)

let render t =
  let open Macs_util in
  let tbl =
    Table.create
      ~header:[ "kernel"; "invocations"; "share"; "CPF"; "MACS %" ]
      ()
  in
  List.iter
    (fun c ->
      Table.add_row tbl
        [
          c.kernel.Lfk.Kernel.name;
          Table.cell_float ~decimals:0 c.invocations;
          Table.cell_pct c.share;
          Table.cell_float ~decimals:3 (Hierarchy.t_p_cpf c.hierarchy);
          Table.cell_pct (Hierarchy.pct_macs c.hierarchy);
        ])
    t.components;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "Application profile: %.2f MFLOPS aggregate\n%s\n"
       t.mflops (Table.render tbl));
  Buffer.add_string buf "\napplication-level advice (by total time saved):\n";
  let top = advise t in
  if top = [] then Buffer.add_string buf "  nothing saves more than 0.5%\n"
  else
    List.iteri
      (fun i ws ->
        if i < 5 then
          Buffer.add_string buf
            (Printf.sprintf "  %4.1f%%  %s: %s\n"
               (100.0 *. ws.application_gain)
               ws.kernel_name ws.suggestion.Advisor.action))
      top;
  Buffer.contents buf
