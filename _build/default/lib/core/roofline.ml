open Convex_machine

type t = {
  flops_per_iteration : int;
  bytes_per_iteration : float;
  arithmetic_intensity : float;
  peak_mflops : float;
  bandwidth_mbs : float;
  roofline_mflops : float;
  ma_mflops : float;
  memory_bound : bool;
}

let peak_mflops (machine : Machine.t) =
  (* one add and one multiply per cycle *)
  2.0 *. machine.clock_mhz

let bandwidth_mbs (machine : Machine.t) =
  float_of_int machine.memory.Mem_params.word_bytes *. machine.clock_mhz

let ridge_intensity ~machine = peak_mflops machine /. bandwidth_mbs machine

let of_counts ~machine ~flops (c : Counts.t) =
  if flops <= 0 then invalid_arg "Roofline.of_counts: nonpositive flops";
  let bytes =
    float_of_int
      (machine.Machine.memory.Mem_params.word_bytes * Counts.t_m c)
  in
  if bytes <= 0.0 then invalid_arg "Roofline.of_counts: no memory traffic";
  let ai = float_of_int flops /. bytes in
  let peak = peak_mflops machine in
  let bw = bandwidth_mbs machine in
  let roof = Float.min peak (ai *. bw) in
  let ma_cpl = float_of_int (Counts.t_bound c) in
  let ma_mflops =
    machine.clock_mhz /. (ma_cpl /. float_of_int flops)
  in
  {
    flops_per_iteration = flops;
    bytes_per_iteration = bytes;
    arithmetic_intensity = ai;
    peak_mflops = peak;
    bandwidth_mbs = bw;
    roofline_mflops = roof;
    ma_mflops;
    memory_bound = ai < ridge_intensity ~machine;
  }

let of_kernel ?(machine = Machine.c240) k =
  of_counts ~machine ~flops:(Lfk.Kernel.flops k) (Counts.ma_of_kernel k)

let ma_refines_roofline t = t.ma_mflops <= t.roofline_mflops +. 1e-9

let render ?(machine = Machine.c240) entries =
  let open Macs_util in
  let tbl =
    Table.create
      ~header:
        [ "kernel"; "AI (flop/B)"; "roofline MFLOPS"; "MA MFLOPS";
          "binding roof" ]
      ()
  in
  List.iter
    (fun (label, t) ->
      Table.add_row tbl
        [
          label;
          Table.cell_float ~decimals:3 t.arithmetic_intensity;
          Table.cell_float ~decimals:2 t.roofline_mflops;
          Table.cell_float ~decimals:2 t.ma_mflops;
          (if t.memory_bound then "memory" else "compute");
        ])
    entries;
  Printf.sprintf
    "Roofline view of the MA bound (peak %.0f MFLOPS, bandwidth %.0f \
     MB/s, ridge at %.2f flop/B).  MA <= roofline everywhere; they \
     coincide when adds and multiplies balance.\n%s"
    (peak_mflops machine) (bandwidth_mbs machine)
    (ridge_intensity ~machine)
    (Table.render tbl)
