open Convex_isa
open Convex_machine

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* A rejected indexed access retries the same (busy) bank, so with
   throughput T a uniformly random access finds its bank busy with
   probability T*busy/banks and then waits (busy+1)/2 cycles on average:

     T * (1 + (T * busy / banks) * (busy + 1) / 2) = 1

   i.e. a*T^2 + T - 1 = 0 with a = busy*(busy+1) / (2*banks); the C-240's
   32 banks and 8-cycle busy time give T = 0.598, which the bank
   simulator reproduces within 1%. *)
let gather_rate ~machine =
  let mp = machine.Machine.memory in
  let busy = float_of_int mp.Mem_params.bank_busy_cycles in
  let banks = float_of_int mp.Mem_params.banks in
  let a = busy *. (busy +. 1.0) /. (2.0 *. banks) in
  (-1.0 +. Float.sqrt (1.0 +. (4.0 *. a))) /. (2.0 *. a)

let stream_rate ~machine ~stride =
  let mp = machine.Machine.memory in
  let s = abs stride in
  if s = 0 then 1.0
  else
    let distinct = mp.Mem_params.banks / gcd s mp.Mem_params.banks in
    Float.min 1.0
      (float_of_int distinct /. float_of_int mp.Mem_params.bank_busy_cycles)

let rate_of_instr ~machine i =
  match i with
  | Instr.Vgather _ | Instr.Vscatter _ -> gather_rate ~machine
  | _ -> (
      match Instr.mem_ref i with
      | Some m -> stream_rate ~machine ~stride:m.stride
      | None -> 1.0)

let memory_cycles_per_iteration ~machine instrs =
  List.fold_left
    (fun acc i ->
      if Instr.is_vector_memory i then
        acc +. (1.0 /. rate_of_instr ~machine i)
      else acc)
    0.0 instrs

type t = { t_m_d : float; t_f : int; t_macd : float; worst_stride : int }

let compute ~machine instrs =
  let counts = Counts.mac_of_instrs instrs in
  let t_m_d = memory_cycles_per_iteration ~machine instrs in
  let t_f = Counts.t_f counts in
  let worst_stride =
    List.fold_left
      (fun (best_stride, best_rate) i ->
        if Instr.is_vector_memory i then begin
          let r = rate_of_instr ~machine i in
          let stride =
            match (i, Instr.mem_ref i) with
            | (Instr.Vgather _ | Instr.Vscatter _), _ -> 0
            | _, Some m -> m.stride
            | _, None -> 1
          in
          if r < best_rate then (stride, r) else (best_stride, best_rate)
        end
        else (best_stride, best_rate))
      (1, 1.0) instrs
    |> fst
  in
  { t_m_d; t_f; t_macd = Float.max t_m_d (float_of_int t_f); worst_stride }

let pp fmt t =
  Format.fprintf fmt
    "MACD: t_m^D = %.2f CPL (worst stride %d), t_f = %d, bound %.2f CPL"
    t.t_m_d t.worst_stride t.t_f t.t_macd
