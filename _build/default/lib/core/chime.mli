open Convex_isa
open Convex_machine

(** Chime partitioning (paper §3.3).

    A chime is a maximal group of consecutive vector instructions that can
    issue in quick succession and execute concurrently across the function
    pipes, chaining permitted.  Partitioning walks the loop body in
    schedule order and closes the current chime when the next vector
    instruction cannot join it:

    - each function pipe holds at most [Machine.pipe_count] instructions
      per chime (one per pipe on the C-240);
    - at most two reads and one write per vector register pair
      (\{v0,v4\} \{v1,v5\} \{v2,v6\} \{v3,v7\});
    - a chime containing a vector memory access cannot span a scalar
      memory access: a scalar load/store closes such a chime, and bars
      vector memory operations from joining the current one.

    Scalar instructions otherwise do not appear in chimes (they execute
    concurrently in the ASU). *)

type t = {
  instrs : Instr.t list;  (** vector instructions, in schedule order *)
  split_by_scalar_memory : bool;
      (** this chime was closed early by a scalar load/store *)
}

val instr_count : t -> int
val has_memory : t -> bool
val has_fp : t -> bool

val z_max : machine:Machine.t -> t -> float
(** Largest per-element rate among the chime's instructions. *)

val bubble_sum : machine:Machine.t -> t -> int
(** Sum of the tailgate bubbles of the chime's instructions (eq. 13). *)

val partition : machine:Machine.t -> Instr.t list -> t list
(** Partition a loop body (vector and scalar instructions, in schedule
    order).  Bodies with no vector instructions yield []. *)

val pp : Format.formatter -> t -> unit
