open Convex_isa

(** Workload counts: the parameters of the MA and MAC models (paper §3.1).

    [f_a] counts floating-point additions (adds, subtracts, reductions),
    [f_m] multiplications (multiplies, divides); [loads] and [stores] count
    memory operations per inner-loop iteration.  The MA counts come from
    the high-level code with perfect index analysis; the MAC counts from
    the compiler-generated assembly. *)

type t = { f_a : int; f_m : int; loads : int; stores : int }

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool

val ma_of_kernel : Lfk.Kernel.t -> t
(** Count the high-level application workload (perfect reuse analysis). *)

val mac_of_instrs : Instr.t list -> t
(** Count the compiled workload: vector instructions only. *)

val mac_of_program : Program.t -> t

val t_f : t -> int
(** FP-pipe bound in CPL: [max f_a f_m] — the add and multiply pipes run
    concurrently at one element per clock each. *)

val t_m : t -> int
(** Memory bound in CPL: [loads + stores] through the single port. *)

val t_bound : t -> int
(** [max (t_f c) (t_m c)]: the MA/MAC cycles-per-iteration bound. *)
