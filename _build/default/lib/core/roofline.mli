open Convex_machine

(** The roofline view of the MA bound.

    MACS's MA level is an ancestor of the roofline model: both bound a
    kernel by the slower of a compute roof and a memory roof.  For the
    C-240 the compute roof is 2 flops/cycle (add and multiply pipes) and
    the memory roof is one 8-byte word per cycle, so in roofline terms

      roof(AI) = min(peak_mflops, AI * bandwidth)

    with arithmetic intensity AI = flops / bytes moved.  The MA bound is
    the same construction with one refinement: it knows the add/multiply
    split, so its compute roof is [max(f_a, f_m)] per iteration rather
    than [flops / 2].  The two coincide exactly when adds and multiplies
    balance (LFK7), and MA is strictly tighter otherwise (LFK10's pure-add
    chain: roofline says 50 MFLOPS of compute headroom, MA correctly says
    the add pipe alone limits it).

    This module computes both and exposes the comparison. *)

type t = {
  flops_per_iteration : int;
  bytes_per_iteration : float;  (** MA traffic: 8 bytes x (loads + stores) *)
  arithmetic_intensity : float;  (** flops per byte *)
  peak_mflops : float;  (** compute roof: both FP pipes at the clock *)
  bandwidth_mbs : float;  (** memory roof: one word per cycle *)
  roofline_mflops : float;  (** min(peak, AI * bandwidth) *)
  ma_mflops : float;  (** the MA bound in MFLOPS *)
  memory_bound : bool;  (** AI below the ridge point *)
}

val ridge_intensity : machine:Machine.t -> float
(** The AI at which the two roofs meet (0.25 flops/byte on the C-240). *)

val of_counts : machine:Machine.t -> flops:int -> Counts.t -> t

val of_kernel : ?machine:Machine.t -> Lfk.Kernel.t -> t
(** From the kernel's MA workload. *)

val ma_refines_roofline : t -> bool
(** [ma_mflops <= roofline_mflops] (up to rounding): the MA bound never
    exceeds the roofline bound because it models the pipe split. *)

val render : ?machine:Machine.t -> (string * t) list -> string
(** A small table of labeled rooflines: AI, roofline bound, MA bound, and
    which roof binds. *)
