open Convex_isa
open Convex_machine

type t = { instrs : Instr.t list; split_by_scalar_memory : bool }

let instr_count c = List.length c.instrs
let has_memory c = List.exists Instr.is_vector_memory c.instrs
let has_fp c = List.exists Instr.is_vector_fp c.instrs

let z_max ~machine c =
  List.fold_left
    (fun acc i ->
      match Instr.vclass_of i with
      | Some cls -> Float.max acc (Timing.get machine.Machine.timing cls).z
      | None -> acc)
    1.0 c.instrs

let bubble_sum ~machine c =
  List.fold_left
    (fun acc i ->
      match Instr.vclass_of i with
      | Some cls -> acc + (Timing.get machine.Machine.timing cls).b
      | None -> acc)
    0 c.instrs

(* Can [i] join the chime currently holding [members] (given the memory
   barrier state)?  Checks pipe occupancy and register-pair ports. *)
let fits ~machine ~barrier members i =
  let pipe = Option.get (Pipe.of_instr i) in
  let on_pipe =
    List.length
      (List.filter (fun m -> Pipe.of_instr m = Some pipe) members)
  in
  if on_pipe >= Machine.pipe_count machine pipe then false
  else if barrier && Instr.is_vector_memory i then false
  else
    let group = i :: members in
    let pair_count f pid =
      List.fold_left
        (fun acc m ->
          acc
          + List.length (List.filter (fun r -> Reg.pair_id r = pid) (f m)))
        0 group
    in
    let ok pid =
      pair_count Instr.reads_v pid <= machine.Machine.pair_read_limit
      && pair_count Instr.writes_v pid <= machine.Machine.pair_write_limit
    in
    List.for_all ok (List.init Reg.pair_count Fun.id)

let partition ~machine instrs =
  (* state: current chime members (reversed), barrier flag, accumulated
     chimes (reversed) *)
  let close members ~split acc =
    if members = [] then acc
    else { instrs = List.rev members; split_by_scalar_memory = split } :: acc
  in
  let rec go members barrier acc = function
    | [] -> List.rev (close members ~split:false acc)
    | i :: rest ->
        if Instr.is_scalar i then
          if Instr.is_scalar_memory i then
            if List.exists Instr.is_vector_memory members then
              (* scalar memory splits a chime containing vector memory *)
              go [] false (close members ~split:true acc) rest
            else
              (* no vector memory yet: bar memory ops from joining *)
              go members true acc rest
          else go members barrier acc rest
        else if fits ~machine ~barrier members i then
          go (i :: members) barrier acc rest
        else go [ i ] false (close members ~split:false acc) rest
  in
  go [] false [] instrs

let pp fmt c =
  Format.fprintf fmt "@[<v>chime (%d instrs%s):" (instr_count c)
    (if c.split_by_scalar_memory then ", split by scalar memory" else "");
  List.iter
    (fun i -> Format.fprintf fmt "@,  %s" (Asm.print_instr i))
    c.instrs;
  Format.fprintf fmt "@]"
