open Convex_isa
open Convex_vpsim

(** A/X performance measurement codes (paper §3.6).

    The A-process is the application with all vector floating-point
    operations removed — it exercises only the access (memory) side.  The
    X-process removes all vector memory operations — execute-only.  Scalar
    instructions are kept in both, so control flow (and the scalar
    overhead the inner-loop models ignore) is unchanged.  The numerical
    outputs of these codes are nonsense; only their run times matter.

    The paper's X-process generator primes registers with safe nonzero
    values to avoid floating-point exceptions; our simulator does not trap,
    but {!prime_registers} reproduces the priming for completeness. *)

val a_process : Job.t -> Job.t
(** Remove vector FP operations everywhere (body, prologues, epilogues).
    Raises [Invalid_argument] if the transform would empty the body. *)

val x_process : Job.t -> Job.t
(** Remove vector memory operations everywhere. *)

val strip_fp : Instr.t list -> Instr.t list
val strip_memory : Instr.t list -> Instr.t list

val prime_registers : Job.t -> (int * float) list
(** Safe initial scalar-register values for running an X-process: each
    live-in scalar register receives a large, mutually prime, nonzero
    value (the paper's recipe). *)
