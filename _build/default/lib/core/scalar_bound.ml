open Convex_isa
open Convex_machine

type t = {
  issue : float;
  memory : float;
  fp : float;
  dependence : float;
  cpl : float;
}

(* latencies mirroring the simulator's scalar unit *)
let load_latency = Convex_vpsim.Sim.scalar_load_latency +. 1.0
let fp_latency = Convex_vpsim.Sim.scalar_fp_latency

let compute ?(carried = false) ~machine instrs =
  let scalar_instrs = List.filter Instr.is_scalar instrs in
  let issue =
    float_of_int (List.length scalar_instrs * machine.Machine.scalar_cycles)
  in
  let memory =
    float_of_int (List.length (List.filter Instr.is_scalar_memory instrs))
  in
  let fp =
    float_of_int
      (List.length
         (List.filter (function Instr.Sbin _ -> true | _ -> false) instrs))
  in
  (* critical path through the scalar registers *)
  let ready = Array.make Reg.scalar_count 0.0 in
  let last_store = ref 0.0 in
  let path = ref 0.0 in
  List.iter
    (fun i ->
      let dep =
        List.fold_left
          (fun acc r -> Float.max acc ready.(Reg.s_index r))
          0.0 (Instr.reads_s i)
      in
      let completion =
        match i with
        | Instr.Sld _ -> dep +. load_latency
        | Instr.Sbin _ -> dep +. fp_latency
        | Instr.Sst _ ->
            let t = dep +. 1.0 in
            last_store := Float.max !last_store t;
            t
        | _ -> dep
      in
      List.iter
        (fun r -> ready.(Reg.s_index r) <- completion)
        (Instr.writes_s i);
      path := Float.max !path completion)
    scalar_instrs;
  let dependence = if carried then Float.max !last_store !path else 0.0 in
  let cpl =
    Float.max issue (Float.max memory (Float.max fp dependence))
  in
  { issue; memory; fp; dependence; cpl }

let of_compiled (c : Fcc.Compiler.t) =
  match c.mode with
  | Convex_vpsim.Job.Vector ->
      invalid_arg "Scalar_bound.of_compiled: vector-mode compilation"
  | Convex_vpsim.Job.Scalar ->
      let carried = c.verdict <> Fcc.Vectorizer.Vectorizable in
      compute ~carried ~machine:Machine.c240
        (Convex_isa.Program.body c.program)

let pp fmt t =
  Format.fprintf fmt
    "scalar bound: issue %.1f, memory %.1f, fp %.1f, dependence %.1f -> \
     %.1f CPL"
    t.issue t.memory t.fp t.dependence t.cpl
