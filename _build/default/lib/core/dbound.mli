open Convex_isa
open Convex_machine

(** The MACSD extension: binding the Data decomposition.

    Paper §3.1: "The peak memory rate could be reduced for nonunit stride
    accesses by defining a fifth degree of freedom, D, after M, A, C and S
    to bind the allocation (decomposition) of the data structures in
    memory."  The paper stops there; this module carries the idea out.

    With [banks] interleaved memory banks of cycle time [busy], a stream
    of stride [s] touches [banks / gcd(s, banks)] distinct banks and
    revisits each after that many accesses.  When the revisit period is
    shorter than the bank cycle time the stream throttles, so the
    sustained rate is

      [rate(s) = min(1, (banks / gcd(s, banks)) / busy)]

    accesses per cycle — 1 for odd strides, 1/2 for stride 16, 1/8 for
    stride 32 on the C-240.  The MACSD memory bound weighs each memory
    operation by [1 / rate(stride)]; FP bounds are unchanged. *)

val gather_rate : machine:Machine.t -> float
(** Sustained rate of a saturated data-dependent (gather/scatter) stream
    with uniformly distributed addresses.  A blocked access retries its
    (busy) bank, so the rate solves a*T² + T = 1 with
    a = busy*(busy+1)/(2*banks) — 0.598 on the C-240, confirmed by the
    bank simulator within 1%.  Note the weight models a {e saturated}
    stream: in loops where other streams dilute the gather's access
    density, the effective rate is higher, so the MACD memory component
    is an upper estimate of gather cost rather than a strict time
    bound. *)

val stream_rate : machine:Machine.t -> stride:int -> float
(** Sustained accesses per cycle of an isolated stream of the given
    stride; [stride = 0] (a scalar reference) counts as unit rate.
    Always in (0; 1]. *)

val memory_cycles_per_iteration : machine:Machine.t -> Instr.t list -> float
(** [t_m^D]: vector memory operations weighted by their stream's
    reciprocal rate — the D-refined replacement for the MAC model's
    [loads + stores]. *)

type t = {
  t_m_d : float;  (** stride-weighted memory bound, CPL *)
  t_f : int;  (** unchanged FP bound, CPL *)
  t_macd : float;  (** [max t_m_d (float t_f)] *)
  worst_stride : int;  (** stride with the lowest rate among the streams *)
}

val compute : machine:Machine.t -> Instr.t list -> t
(** The MACD bound of a compiled loop body. *)

val pp : Format.formatter -> t -> unit
