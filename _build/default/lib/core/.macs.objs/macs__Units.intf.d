lib/core/units.pp.mli:
