lib/core/macs_bound.pp.mli: Chime Convex_isa Convex_machine Format Instr Machine
