lib/core/macs_bound.pp.ml: Array Chime Convex_isa Convex_machine Format Fun Instr List Machine Mem_params Option Pipe Timing
