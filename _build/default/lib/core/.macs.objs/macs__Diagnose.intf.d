lib/core/diagnose.pp.mli: Hierarchy
