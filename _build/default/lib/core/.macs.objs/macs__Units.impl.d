lib/core/units.pp.ml: Macs_util
