lib/core/dbound.pp.mli: Convex_isa Convex_machine Format Instr Machine
