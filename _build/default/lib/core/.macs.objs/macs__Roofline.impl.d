lib/core/roofline.pp.ml: Convex_machine Counts Float Lfk List Machine Macs_util Mem_params Printf Table
