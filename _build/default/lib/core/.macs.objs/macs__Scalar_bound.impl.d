lib/core/scalar_bound.pp.ml: Array Convex_isa Convex_machine Convex_vpsim Fcc Float Format Instr List Machine Reg
