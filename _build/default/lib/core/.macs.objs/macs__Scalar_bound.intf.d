lib/core/scalar_bound.pp.mli: Convex_isa Convex_machine Fcc Format Instr Machine
