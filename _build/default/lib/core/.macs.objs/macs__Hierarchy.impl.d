lib/core/hierarchy.pp.ml: Array Ax Convex_isa Convex_machine Convex_memsys Convex_vpsim Counts Fcc Float Format Layout Lfk List Machine Macs_bound Measure Store Units
