lib/core/counts.pp.ml: Convex_isa Instr Lfk List Ppx_deriving_runtime Program
