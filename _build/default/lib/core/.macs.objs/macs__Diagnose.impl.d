lib/core/diagnose.pp.ml: Buffer Chime Convex_isa Convex_machine Convex_vpsim Counts Fcc Float Hierarchy Lfk List Macs_bound Measure Printf
