lib/core/advisor.pp.ml: Buffer Convex_isa Convex_machine Convex_vpsim Fcc Float Hierarchy Lfk List Machine Macs_bound Printf Scalar_bound
