lib/core/application.pp.mli: Advisor Convex_machine Hierarchy Lfk Machine
