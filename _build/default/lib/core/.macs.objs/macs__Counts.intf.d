lib/core/counts.pp.mli: Convex_isa Format Instr Lfk Program
