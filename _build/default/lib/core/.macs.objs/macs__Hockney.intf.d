lib/core/hockney.pp.mli: Convex_machine Lfk Machine
