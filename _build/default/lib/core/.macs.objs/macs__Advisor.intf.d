lib/core/advisor.pp.mli: Convex_machine Lfk Machine
