lib/core/ax.pp.ml: Convex_isa Convex_vpsim Instr Job List Program Reg
