lib/core/application.pp.ml: Advisor Buffer Convex_machine Convex_vpsim Float Hierarchy Lfk List Machine Macs_util Printf Table
