lib/core/hierarchy.pp.mli: Contention Convex_machine Convex_memsys Convex_vpsim Counts Fcc Format Layout Lfk Machine Macs_bound Measure
