lib/core/hockney.pp.ml: Convex_isa Convex_machine Convex_vpsim Fcc Job Lfk List Machine Macs_bound Macs_util Scalar_bound Sim Table
