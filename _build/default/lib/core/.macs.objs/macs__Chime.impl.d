lib/core/chime.pp.ml: Asm Convex_isa Convex_machine Float Format Fun Instr List Machine Option Pipe Reg Timing
