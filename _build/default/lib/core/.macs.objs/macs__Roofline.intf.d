lib/core/roofline.pp.mli: Convex_machine Counts Lfk Machine
