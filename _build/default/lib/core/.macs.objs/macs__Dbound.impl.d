lib/core/dbound.pp.ml: Convex_isa Convex_machine Counts Float Format Instr List Machine Mem_params
