lib/core/chime.pp.mli: Convex_isa Convex_machine Format Instr Machine
