lib/core/ax.pp.mli: Convex_isa Convex_vpsim Instr Job
