open Convex_isa
open Convex_machine

(** Bounds for scalar-mode loops.

    The paper's §3.1 names the bottleneck units of scalar machines: the
    instruction issue unit, the memory interface, the floating-point
    units, "and a dependence pseudo-unit to model loop-carried
    dependence" (its references [4][5] develop the model for the ZS-1 and
    RS/6000).  This module applies that recipe to the C-240's scalar
    mode, per iteration of a scalar loop body:

    - [issue]: every instruction occupies the single in-order issue stage;
    - [memory]: scalar loads/stores through the one memory port;
    - [fp]: scalar floating-point ALU operations;
    - [dependence]: the critical path through scalar registers and, for
      loops whose store feeds a later iteration's load (LFK5/LFK11), the
      carried chain load → ALU ops → store → next load.

    The bound is the maximum of the four; the simulator's measured CPL
    should approach it from above. *)

type t = {
  issue : float;
  memory : float;
  fp : float;
  dependence : float;
  cpl : float;  (** max of the four components *)
}

val compute :
  ?carried:bool -> machine:Machine.t -> Instr.t list -> t
(** Bound for one iteration of a scalar loop body.  [carried] (default
    [false]) adds the cross-iteration memory edge to the dependence
    chain: the next iteration's loads wait for this iteration's last
    store. *)

val of_compiled : Fcc.Compiler.t -> t
(** Convenience: compute the bound for a scalar-mode compilation result
    (using its vectorization verdict to set [carried]).  Raises
    [Invalid_argument] when the compilation is in vector mode. *)

val pp : Format.formatter -> t -> unit
