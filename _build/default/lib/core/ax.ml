open Convex_isa
open Convex_vpsim

let strip_fp = List.filter (fun i -> not (Instr.is_vector_fp i))
let strip_memory = List.filter (fun i -> not (Instr.is_vector_memory i))

let a_process job =
  let j = Job.map_body strip_fp job in
  { j with Job.name = job.Job.name ^ ".a-process" }

let x_process job =
  let j = Job.map_body strip_memory job in
  { j with Job.name = job.Job.name ^ ".x-process" }

(* large, pairwise relatively prime magnitudes, scaled into float range *)
let prime_pool = [ 1009.0; 1013.0; 1019.0; 1021.0; 1031.0; 1033.0; 1039.0;
                   1049.0 ]

let prime_registers job =
  let live =
    Program.live_in_s (Program.make ~name:"probe" (job.Job.body))
  in
  List.mapi
    (fun i r ->
      (Reg.s_index r, List.nth prime_pool (i mod List.length prime_pool)))
    live
