open Convex_isa
open Convex_machine

(** Calibration loops (paper §3.2).

    The paper verifies the machine's specified X/Y/Z parameters and
    discovers the tailgate bubble B by running specially constructed test
    loops.  This module plays the same game against the simulator: it
    builds single-instruction and back-to-back loops, measures them, and
    fits eq. 5 ([X + Y + Z * VL]) and eq. 13 ([Z * VL + B] per steady-state
    repetition).  Reproducing Table 1 means the fitted values match the
    specification table the simulator was built from — the same closure
    check the paper performs against the Convex documentation. *)

type fit = {
  vclass : Instr.vclass;
  startup : float;  (** fitted X + Y *)
  z : float;  (** fitted per-element rate *)
  b : float;  (** fitted steady-state bubble *)
}

val representative : Instr.vclass -> Instr.t
(** A canonical instruction of the class, suitable for a calibration
    loop. *)

val single_run_cycles : ?machine:Machine.t -> Instr.vclass -> vl:int -> float
(** Cycles to execute one isolated instruction of the class at [vl]. *)

val fit_class : ?machine:Machine.t -> Instr.vclass -> fit
(** Fit X+Y and Z from a VL sweep of isolated instructions, and B from the
    steady-state delta of a long back-to-back loop.  Uses a refresh-free
    machine variant so the fit is exact, as the paper's conservative
    parameter choices intend. *)

val fit_all : ?machine:Machine.t -> unit -> fit list
(** One fit per vector instruction class, in {!Instr.all_vclasses} order. *)

val chime_cycles : ?machine:Machine.t -> Instr.t list -> float
(** Steady-state cycles of one repetition of the given chime (the paper's
    per-chime calibration loops of §3.5: e.g. LFK1 chime 2 measures
    133.33).  Measured as the per-iteration delta of a long run with
    refresh enabled, matching how the paper timed chime loops. *)
