(** Export a traced simulation as Chrome trace-event JSON
    (chrome://tracing, Perfetto).  Each vector instruction becomes a
    complete event on its function pipe's track; scalar instructions go to
    a scalar-unit track.  Cycle numbers are exported as microseconds so
    the viewer's timeline reads directly in cycles. *)

val to_chrome_json : Sim.result -> string
(** Requires a trace ([Sim.run ~trace:true]); an untraced result produces
    an empty event array. *)

val write_file : string -> Sim.result -> unit
