open Convex_isa

(** A complete runnable workload for the simulator: a strip-mined inner-loop
    body plus the sequence of inner-loop instances ({e segments}) the outer
    loop structure produces.

    For a simple kernel like LFK1 there is a single segment of length [n].
    For LFK6 (triangular recurrence) there is one segment per outer
    iteration, of growing length; for LFK2 (ICCG) the segment lengths halve.
    Each segment may shift the effective base address of arrays (modeling
    outer-loop address arithmetic for 2-D arrays) and may carry scalar or
    vector prologue/epilogue instructions that execute once per segment
    (modeling the paper's "outer loop overhead"). *)

type segment = {
  base : int;  (** loop-index value of the segment's first element *)
  vl : int;  (** number of elements; strip-mined into chunks of max VL *)
  shifts : (string * int) list;
      (** per-array extra word offset for this segment *)
  prologue : Instr.t list;
  epilogue : Instr.t list;
}

val segment : ?base:int -> ?shifts:(string * int) list ->
  ?prologue:Instr.t list -> ?epilogue:Instr.t list -> int -> segment
(** [segment n] is a plain segment of [n] elements starting at index 0. *)

(** Execution mode.  In [Vector] mode the body is a strip-mined vector
    loop: one body execution covers up to max-VL elements.  In [Scalar]
    mode the body processes a single element per execution (the C-240's
    scalar mode, used for loops the compiler cannot vectorize). *)
type mode = Vector | Scalar

type t = {
  name : string;
  body : Instr.t list;
  segments : segment list;
  mode : mode;
}

val make :
  ?mode:mode -> name:string -> body:Instr.t list -> segments:segment list ->
  unit -> t
(** Raises [Invalid_argument] on an empty body, empty segment list, or a
    nonpositive segment length.  [mode] defaults to [Vector]. *)

val of_program : Program.t -> n:int -> t
(** Single-segment job over a program's body. *)

val total_elements : t -> int
(** Sum of segment lengths: the number of original inner-loop iterations,
    the denominator of CPL. *)

val strip_count : t -> max_vl:int -> int
(** Number of body executions: strips in vector mode, elements in scalar
    mode. *)

val arrays : t -> string list
(** All arrays referenced by body, prologues and epilogues. *)

val map_body : (Instr.t list -> Instr.t list) -> t -> t
(** Transform the body (and each segment's prologue/epilogue) — used by the
    A/X process generators. *)
