open Convex_isa

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let track_of (e : Sim.event) =
  match Convex_machine.Pipe.of_instr e.instr with
  | Some p -> Convex_machine.Pipe.index p + 1
  | None -> 0

let track_name = function
  | 0 -> "scalar unit"
  | 1 -> "load/store pipe"
  | 2 -> "add pipe"
  | 3 -> "multiply pipe"
  | _ -> "?"

let to_chrome_json (r : Sim.result) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let comma () =
    if !first then first := false else Buffer.add_char buf ','
  in
  (* track metadata *)
  List.iter
    (fun tid ->
      comma ();
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\
            \"args\":{\"name\":\"%s\"}}"
           tid (track_name tid)))
    [ 0; 1; 2; 3 ];
  List.iter
    (fun (e : Sim.event) ->
      comma ();
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\
            \"dur\":%.3f,\"args\":{\"strip\":%d,\"issue\":%.1f,\
            \"first_result\":%.1f}}"
           (escape (Asm.print_instr e.instr))
           (track_of e) e.start
           (Float.max 0.001 (e.completion -. e.start))
           e.strip e.issue e.first_result))
    r.events;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

let write_file path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json r))
