lib/vpsim/calibrate.pp.mli: Convex_isa Convex_machine Instr Machine
