lib/vpsim/job.pp.ml: Convex_isa Instr List Option Program String
