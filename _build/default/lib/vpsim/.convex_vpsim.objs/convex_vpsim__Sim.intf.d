lib/vpsim/sim.pp.mli: Contention Convex_isa Convex_machine Convex_memsys Format Instr Job Layout Machine
