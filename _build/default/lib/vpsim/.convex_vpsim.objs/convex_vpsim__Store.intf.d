lib/vpsim/store.pp.mli:
