lib/vpsim/cosim.pp.ml: Array Convex_machine Float Format List Machine Mem_params Sim
