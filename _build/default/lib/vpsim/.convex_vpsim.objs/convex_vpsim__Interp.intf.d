lib/vpsim/interp.pp.mli: Job Store
