lib/vpsim/cosim.pp.mli: Convex_machine Format Job Machine
