lib/vpsim/store.pp.ml: Array Hashtbl List Printf
