lib/vpsim/calibrate.pp.ml: Convex_isa Convex_machine Instr Job List Machine Macs_util Reg Sim
