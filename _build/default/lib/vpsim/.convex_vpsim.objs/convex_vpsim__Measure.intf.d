lib/vpsim/measure.pp.mli: Contention Convex_machine Convex_memsys Format Job Layout Machine Sim
