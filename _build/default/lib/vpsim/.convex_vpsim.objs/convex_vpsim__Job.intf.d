lib/vpsim/job.pp.mli: Convex_isa Instr Program
