lib/vpsim/parallel.pp.mli: Convex_machine Format Job Machine Measure
