lib/vpsim/trace_export.pp.ml: Asm Buffer Convex_isa Convex_machine Float Fun List Printf Sim String
