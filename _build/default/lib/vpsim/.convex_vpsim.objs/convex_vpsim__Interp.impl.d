lib/vpsim/interp.pp.ml: Array Convex_isa Float Instr Job List Printf Reg Store
