lib/vpsim/parallel.pp.ml: Contention Convex_machine Convex_memsys Float Format Job List Machine Measure Sim
