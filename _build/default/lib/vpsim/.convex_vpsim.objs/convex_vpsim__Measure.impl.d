lib/vpsim/measure.pp.ml: Convex_machine Format Machine Sim
