lib/vpsim/trace_export.pp.mli: Sim
