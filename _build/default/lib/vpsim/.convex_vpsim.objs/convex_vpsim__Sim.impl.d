lib/vpsim/sim.pp.ml: Array Asm Contention Convex_isa Convex_machine Convex_memsys Float Format Fun Instr Job Layout List Machine Memory Option Pipe Reg Timing
