open Convex_machine

(** Trace-replay co-simulation of the shared memory system.

    Where {!Parallel} models cross-CPU interference with a calibrated
    steal probability, this module makes it {e emerge}: each workload
    first runs solo (traced), its memory accesses are reconstructed as a
    time-stamped stream, and the streams of up to four CPUs are then
    replayed together, cycle by cycle, against the shared banks — each
    CPU has its own port (as on the C-240), but a bank in its busy window
    rejects everyone.  A rejected access slips that CPU's entire remaining
    stream by a cycle, so contention compounds exactly as queueing does.

    The paper's §4.2 rules of thumb then fall out rather than being
    dialed in: identical lockstep streams interleave cleanly across banks
    (the 5–10% case), while unrelated programs collide irregularly (the
    ~20% case), and memory-saturated codes expose the most degradation. *)

type access = { cycle : int; word : int }

type stream = {
  name : string;
  accesses : access list;  (** time-ordered solo access stream *)
  solo_cycles : float;
}

type cpu_outcome = {
  stream : stream;
  delay : int;  (** cycles of slip accumulated by the replay *)
  slowdown : float;  (** (solo + delay) / solo *)
}

type t = { cpus : cpu_outcome list; average_slowdown : float }

val stream_of_job :
  ?machine:Machine.t -> name:string -> Job.t -> stream
(** Solo-run the job (traced) and reconstruct its memory-access stream:
    each vector memory instruction contributes one access per element
    starting at its observed start cycle; scalar accesses contribute one.
    Bank addresses come from the same layout the run used. *)

val replay :
  ?machine:Machine.t -> ?stagger:int -> ?equalize:bool -> stream list -> t
(** Replay up to four streams against shared banks.  [stagger] offsets
    CPU [i]'s start by [i * stagger] cycles (default 3 — processes never
    start on the same cycle).  [equalize] (default true) repeats shorter
    streams until they cover the longest, modeling a machine that stays
    loaded; per-CPU slip is then averaged back to one repetition.  Raises
    [Invalid_argument] on an empty list or more than four streams. *)

val run :
  ?machine:Machine.t -> ?stagger:int -> (Job.t * string) list -> t
(** [stream_of_job] each workload, then [replay]. *)

val pp : Format.formatter -> t -> unit
