open Convex_machine
open Convex_memsys

(** High-level measurement wrapper: runs a job on the simulator and reports
    the paper's units. *)

type t = {
  cpl : float;  (** cycles per original inner-loop iteration *)
  cpf : float;  (** cycles per floating-point operation *)
  mflops : float;
  cycles : float;
  stats : Sim.stats;
}

val run :
  ?machine:Machine.t ->
  ?layout:Layout.t ->
  ?contention:Contention.t ->
  flops_per_iteration:int ->
  Job.t ->
  t
(** Raises [Invalid_argument] if [flops_per_iteration <= 0]. *)

val pp : Format.formatter -> t -> unit
