open Convex_isa

type segment = {
  base : int;
  vl : int;
  shifts : (string * int) list;
  prologue : Instr.t list;
  epilogue : Instr.t list;
}

let segment ?(base = 0) ?(shifts = []) ?(prologue = []) ?(epilogue = []) vl =
  { base; vl; shifts; prologue; epilogue }

type mode = Vector | Scalar

type t = {
  name : string;
  body : Instr.t list;
  segments : segment list;
  mode : mode;
}

let make ?(mode = Vector) ~name ~body ~segments () =
  if body = [] then invalid_arg "Job.make: empty body";
  if segments = [] then invalid_arg "Job.make: no segments";
  List.iter
    (fun s -> if s.vl <= 0 then invalid_arg "Job.make: nonpositive segment")
    segments;
  { name; body; segments; mode }

let of_program p ~n =
  make ~name:(Program.name p) ~body:(Program.body p) ~segments:[ segment n ]
    ()

let total_elements t = List.fold_left (fun acc s -> acc + s.vl) 0 t.segments

let strip_count t ~max_vl =
  let max_vl = match t.mode with Vector -> max_vl | Scalar -> 1 in
  List.fold_left (fun acc s -> acc + ((s.vl + max_vl - 1) / max_vl)) 0 t.segments

let arrays t =
  let of_instrs is =
    List.filter_map
      (fun i -> Option.map (fun (m : Instr.mem) -> m.array) (Instr.mem_ref i))
      is
  in
  let names =
    of_instrs t.body
    @ List.concat_map (fun s -> of_instrs s.prologue @ of_instrs s.epilogue)
        t.segments
  in
  List.sort_uniq String.compare names

let map_body f t =
  let map_seg s =
    { s with prologue = f s.prologue; epilogue = f s.epilogue }
  in
  let body = f t.body in
  if body = [] then invalid_arg "Job.map_body: transform emptied body";
  { t with body; segments = List.map map_seg t.segments }
