open Convex_machine

type t = {
  cpl : float;
  cpf : float;
  mflops : float;
  cycles : float;
  stats : Sim.stats;
}

let run ?(machine = Machine.c240) ?layout ?contention ~flops_per_iteration job
    =
  if flops_per_iteration <= 0 then
    invalid_arg "Measure.run: nonpositive flops_per_iteration";
  let r = Sim.run ~machine ?layout ?contention job in
  let cpl = Sim.cpl r in
  let cpf = cpl /. float_of_int flops_per_iteration in
  {
    cpl;
    cpf;
    mflops = Machine.mflops_of_cpf machine cpf;
    cycles = r.stats.cycles;
    stats = r.stats;
  }

let pp fmt m =
  Format.fprintf fmt "%.3f CPL, %.3f CPF, %.2f MFLOPS (%.0f cycles)" m.cpl
    m.cpf m.mflops m.cycles
