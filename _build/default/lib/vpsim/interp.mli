(** Functional (timing-free) interpreter for jobs.

    Executes a job's instructions over a {!Store.t}, giving the compiled
    code a reference semantics: tests compare its results against the
    direct OCaml implementations of the Livermore kernels to establish that
    the compiler substrate preserves meaning before its output is fed to
    the timing model.

    Scalar registers are initialised from [sregs]; vector registers start
    zero-filled.  [Sop], [Smovvl] and [Sbranch] are no-ops (the driver
    performs loop control).  Out-of-bounds accesses raise {!Error}. *)

exception Error of string

val run :
  ?max_vl:int ->
  ?sregs:(int * float) list ->
  store:Store.t ->
  Job.t ->
  float array
(** Run all segments and strips; returns the final scalar register file
    (length {!Convex_isa.Reg.scalar_count}).  [max_vl] defaults to 128. *)
