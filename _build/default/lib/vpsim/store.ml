type t = { table : (string, float array) Hashtbl.t; order : string list }

let create bindings =
  let table = Hashtbl.create 16 in
  let order =
    List.map
      (fun (name, arr) ->
        if Hashtbl.mem table name then
          invalid_arg (Printf.sprintf "Store.create: duplicate array %s" name);
        Hashtbl.add table name arr;
        name)
      bindings
  in
  { table; order }

let of_sizes sizes =
  create (List.map (fun (name, n) -> (name, Array.make n 0.0)) sizes)

let get t name =
  match Hashtbl.find_opt t.table name with
  | Some a -> a
  | None -> raise Not_found

let mem t name = Hashtbl.mem t.table name
let arrays t = t.order

let copy t =
  create (List.map (fun name -> (name, Array.copy (get t name))) t.order)
