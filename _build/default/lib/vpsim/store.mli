(** Array storage for the functional interpreter: a named collection of
    float arrays standing in for the Fortran COMMON blocks of the LFK
    benchmark driver. *)

type t

val create : (string * float array) list -> t
(** Arrays are held by reference: the interpreter mutates them in place.
    Raises [Invalid_argument] on duplicate names. *)

val of_sizes : (string * int) list -> t
(** Zero-filled arrays. *)

val get : t -> string -> float array
(** Raises [Not_found]. *)

val mem : t -> string -> bool
val arrays : t -> string list

val copy : t -> t
(** Deep copy, so a run can be compared against a pristine baseline. *)
