(** A gallery of synthetic kernels beyond the Livermore set: the classic
    memory-system micro-patterns (STREAM-style daxpy and triad, a dot
    product, a 5-point stencil with shifted reuse, a Jacobi relaxation
    row, a strided gather, and a divide-heavy update).  Each comes with a
    reference implementation, so the full compile–interpret–verify
    pipeline of the LFK set applies to them too.

    Ids are 101 and up, outside the Livermore range. *)

val daxpy : Kernel.t
(** [y(i) = a*x(i) + y(i)] — the BLAS level-1 classic. *)

val dot : Kernel.t
(** [s = sum x(i)*y(i)] — reduction into a stored scalar. *)

val triad : Kernel.t
(** [a(i) = b(i) + q*c(i)] — STREAM triad. *)

val stencil5 : Kernel.t
(** [a(i) = w*(b(i-2)+b(i-1)+b(i)+b(i+1)+b(i+2))] — one reuse stream the
    V6.1-style compiler reloads five times. *)

val jacobi_row : Kernel.t
(** [r(i) = 0.25*(u(i-1) + u(i+1) + un(i) + us(i))] — one row of a 2-D
    Jacobi sweep. *)

val gather16 : Kernel.t
(** [b(i) = q*a(16*i)] — a stride-16 stream that halves the sustainable
    memory rate (the D-bound demonstration). *)

val rcp_update : Kernel.t
(** [y(i) = y(i) + x(i)/z(i)] — exercises the long-latency divide and its
    masking rule. *)

val norm2 : Kernel.t
(** [y(i) = sqrt(x(i)² + z(i)²)] — exercises the multiply pipe's
    iterative square-root unit. *)

val permute : Kernel.t
(** [y(i) = a(idx(i)) + y(i)] — a data-dependent gather whose random bank
    pattern throttles per the saturated-gather closed form. *)

val clip : Kernel.t
(** [y(i) = w * min(x(i), c)] — a compare into the vector merge register
    followed by a merge (vector edit on the multiply pipe). *)

val all : Kernel.t list

val find : int -> Kernel.t
(** By gallery id (101..); raises [Not_found]. *)

val run_reference : Kernel.t -> Convex_vpsim.Store.t -> unit
(** Ground-truth semantics, as {!Reference.run} for the Livermore set. *)

val output_arrays : Kernel.t -> string list
