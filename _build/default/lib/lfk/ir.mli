(** Loop intermediate representation: the "high-level application code" (A)
    of the MACS model.

    A kernel's inner loop is a list of statements over a loop index [k];
    array references are affine in [k] ([element = scale*k + offset]).
    Named scalars are loop-invariant; [Temp] names values bound by [Let]
    earlier in the same iteration (the compiler keeps them in registers).
    At most one [Reduce] accumulator per kernel, accumulating a sum of the
    right-hand side over the loop. *)

type cmp = CLt | CLe | CEq | CNe

val pp_cmp : Format.formatter -> cmp -> unit
val equal_cmp : cmp -> cmp -> bool

type ref_ = { array : string; scale : int; offset : int }

val pp_ref_ : Format.formatter -> ref_ -> unit
val show_ref_ : ref_ -> string
val equal_ref_ : ref_ -> ref_ -> bool
val compare_ref_ : ref_ -> ref_ -> int

type expr =
  | Load of ref_
  | Scalar of string
  | Temp of string
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Neg of expr
  | Sqrt of expr
  | Gather of { array : string; offset : int; index : expr }
      (** [array(offset + int(index_k))]: a data-dependent (indexed)
          load.  Never coalescible; compiled to {!Convex_isa.Instr.Vgather}. *)
  | Select of { op : cmp; a : expr; b : expr; if_true : expr; if_false : expr }
      (** [if a OP b then if_true else if_false], element-wise — compiled
          to a compare into the vector merge register followed by a
          merge (vector edit). *)

val pp_expr : Format.formatter -> expr -> unit
val show_expr : expr -> string
val equal_expr : expr -> expr -> bool

type stmt =
  | Let of string * expr
  | Store of ref_ * expr
  | Scatter of { array : string; offset : int; index : expr; value : expr }
      (** [array(offset + int(index_k)) := value_k]: a data-dependent
          (indexed) store. *)
  | Reduce of { neg : bool; rhs : expr }
      (** [acc := acc + sum_k rhs] ([acc := acc - ...] when [neg]); the
          accumulator itself is declared by the kernel. *)

val pp_stmt : Format.formatter -> stmt -> unit
val show_stmt : stmt -> string
val equal_stmt : stmt -> stmt -> bool

(** {1 Static analysis: the MA workload counts (paper §3.1)} *)

val op_counts : stmt list -> int * int
(** [(f_a, f_m)]: floating-point additions (adds, subtracts, and the
    reduce accumulation) and multiplications (multiplies, divides, and
    square roots — the multiply pipe's work) per inner-loop iteration,
    counted from the high-level code. *)

val flops : stmt list -> int
(** [f_a + f_m]. *)

val load_refs : stmt list -> ref_ list
(** Distinct array references read, in first-occurrence order (textually
    identical references count once: even the V6.1-style compiler keeps a
    value loaded twice in the same iteration in a register). *)

val store_refs : stmt list -> ref_ list

val ma_load_count : stmt list -> int
(** Loads per iteration under perfect index analysis: references to the
    same array with the same scale and congruent offsets (offsets equal
    modulo the scale) form one stream whose elements are reused across
    iterations, costing a single load per iteration.  This is the paper's
    idealisation that the C-240 compiler misses ("vector elements reused in
    the next iteration are shifted by the loop index increment"). *)

val ma_store_count : stmt list -> int

val indexed_arrays : stmt list -> string list
(** Arrays accessed through gathers or scatters, sorted and distinct. *)

val select_count : stmt list -> int
(** Number of [Select] constructs: each costs one add-pipe comparison and
    one multiply-pipe merge, which the MA bound must charge even though
    neither is a flop. *)

val scalars : stmt list -> string list
(** Distinct scalar names referenced, in first-occurrence order. *)

val temps : stmt list -> string list

val validate : stmt list -> (unit, string) result
(** Checks well-formedness: every [Temp] is bound by an earlier [Let], no
    temp is bound twice, at most one [Reduce], scales of load references
    are nonzero, stores have nonzero scale. *)
