type segment_spec = {
  base : int;
  length : int;
  shifts : (string * int) list;
}

type acc_init = Zero | Load_from of Ir.ref_

type acc_spec = {
  init : acc_init;
  scale_by : string option;
  store_to : Ir.ref_ option;
}

type t = {
  id : int;
  name : string;
  description : string;
  fortran : string;
  body : Ir.stmt list;
  acc : acc_spec option;
  scalars : (string * float) list;
  arrays : (string * int) list;
  aliases : (string * string) list;
  segments : segment_spec list;
  outer_ops : int;
}

let flops k = Ir.flops k.body

let total_elements k =
  List.fold_left (fun acc s -> acc + s.length) 0 k.segments

let has_reduction k =
  List.exists (function Ir.Reduce _ -> true | _ -> false) k.body

let all_array_names k =
  List.map fst k.arrays @ List.map fst k.aliases

let validate k =
  let ( let* ) = Result.bind in
  let* () = Ir.validate k.body in
  let* () =
    if has_reduction k <> Option.is_some k.acc then
      Error "Reduce statement and acc spec must come together"
    else Ok ()
  in
  let* () =
    let known = List.map fst k.scalars in
    let needed =
      Ir.scalars k.body
      @ (match k.acc with
        | Some { scale_by = Some s; _ } -> [ s ]
        | _ -> [])
    in
    match List.find_opt (fun s -> not (List.mem s known)) needed with
    | Some s -> Error (Printf.sprintf "scalar %s has no value" s)
    | None -> Ok ()
  in
  let* () =
    let declared = all_array_names k in
    let acc_refs =
      match k.acc with
      | None -> []
      | Some a ->
          (match a.init with Load_from r -> [ r ] | Zero -> [])
          @ match a.store_to with Some r -> [ r ] | None -> []
    in
    let refs = Ir.load_refs k.body @ Ir.store_refs k.body @ acc_refs in
    match
      List.find_opt
        (fun (r : Ir.ref_) -> not (List.mem r.array declared))
        refs
    with
    | Some r -> Error (Printf.sprintf "array %s is not declared" r.array)
    | None -> (
        match
          List.find_opt
            (fun a -> not (List.mem a declared))
            (Ir.indexed_arrays k.body)
        with
        | Some a ->
            Error (Printf.sprintf "indexed array %s is not declared" a)
        | None -> Ok ())
  in
  let* () =
    match
      List.find_opt
        (fun (_, target) -> not (List.mem_assoc target k.arrays))
        k.aliases
    with
    | Some (a, target) ->
        Error (Printf.sprintf "alias %s targets undeclared array %s" a target)
    | None -> Ok ()
  in
  let* () =
    if k.segments = [] then Error "kernel has no segments" else Ok ()
  in
  match List.find_opt (fun s -> s.length <= 0) k.segments with
  | Some _ -> Error "segment with nonpositive length"
  | None -> Ok ()
