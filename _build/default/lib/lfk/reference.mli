(** Direct OCaml implementations of the ten kernels: the ground truth the
    compiled-and-interpreted code is validated against.

    Each implementation mutates a {!Convex_vpsim.Store.t} exactly as the
    original Fortran would (sequential execution order), using the same
    scalar constant values as the kernel definition. *)

val run : Kernel.t -> Convex_vpsim.Store.t -> unit
(** Raises [Invalid_argument] for a kernel id outside the implemented
    set. *)

val output_arrays : Kernel.t -> string list
(** The arrays a kernel writes — the ones result comparisons should
    inspect. *)
