type cmp = CLt | CLe | CEq | CNe [@@deriving show, eq]

type ref_ = { array : string; scale : int; offset : int }
[@@deriving show, eq, ord]

type expr =
  | Load of ref_
  | Scalar of string
  | Temp of string
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Neg of expr
  | Sqrt of expr
  | Gather of { array : string; offset : int; index : expr }
  | Select of { op : cmp; a : expr; b : expr; if_true : expr; if_false : expr }
[@@deriving show, eq]

type stmt =
  | Let of string * expr
  | Store of ref_ * expr
  | Scatter of { array : string; offset : int; index : expr; value : expr }
  | Reduce of { neg : bool; rhs : expr }
[@@deriving show, eq]

let rec expr_ops (fa, fm) = function
  | Load _ | Scalar _ | Temp _ -> (fa, fm)
  | Add (a, b) | Sub (a, b) -> expr_ops (expr_ops (fa + 1, fm) a) b
  | Mul (a, b) | Div (a, b) -> expr_ops (expr_ops (fa, fm + 1) a) b
  | Neg a -> expr_ops (fa, fm) a
  | Sqrt a -> expr_ops (fa, fm + 1) a
  | Gather { index; _ } -> expr_ops (fa, fm) index
  | Select { a; b; if_true; if_false; _ } ->
      expr_ops (expr_ops (expr_ops (expr_ops (fa, fm) a) b) if_true) if_false

let stmt_ops acc = function
  | Let (_, e) | Store (_, e) -> expr_ops acc e
  | Scatter { index; value; _ } -> expr_ops (expr_ops acc index) value
  | Reduce { rhs; _ } ->
      let fa, fm = expr_ops acc rhs in
      (fa + 1, fm)

let op_counts stmts = List.fold_left stmt_ops (0, 0) stmts

let flops stmts =
  let fa, fm = op_counts stmts in
  fa + fm

let rec expr_loads acc = function
  | Load r -> r :: acc
  | Scalar _ | Temp _ -> acc
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      expr_loads (expr_loads acc a) b
  | Neg a -> expr_loads acc a
  | Sqrt a -> expr_loads acc a
  | Gather { index; _ } -> expr_loads acc index
  | Select { a; b; if_true; if_false; _ } ->
      expr_loads (expr_loads (expr_loads (expr_loads acc a) b) if_true)
        if_false

let dedup_keep_order xs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let load_refs stmts =
  let all =
    List.fold_left
      (fun acc s ->
        match s with
        | Let (_, e) | Store (_, e) -> expr_loads acc e
        | Scatter { index; value; _ } ->
            expr_loads (expr_loads acc index) value
        | Reduce { rhs; _ } -> expr_loads acc rhs)
      [] stmts
  in
  dedup_keep_order (List.rev all)

let store_refs stmts =
  List.filter_map
    (function
      | Store (r, _) -> Some r
      | Let _ | Scatter _ | Reduce _ -> None)
    stmts

let rec expr_gathers acc = function
  | Gather { array; index; _ } -> expr_gathers (array :: acc) index
  | Load _ | Scalar _ | Temp _ -> acc
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      expr_gathers (expr_gathers acc a) b
  | Neg a | Sqrt a -> expr_gathers acc a
  | Select { a; b; if_true; if_false; _ } ->
      expr_gathers
        (expr_gathers (expr_gathers (expr_gathers acc a) b) if_true)
        if_false

let indexed_arrays stmts =
  List.fold_left
    (fun acc s ->
      match s with
      | Let (_, e) | Store (_, e) -> expr_gathers acc e
      | Scatter { array; index; value; _ } ->
          array :: expr_gathers (expr_gathers acc index) value
      | Reduce { rhs; _ } -> expr_gathers acc rhs)
    [] stmts
  |> List.sort_uniq String.compare

let gather_count stmts =
  let rec count = function
    | Gather { index; _ } -> 1 + count index
    | Load _ | Scalar _ | Temp _ -> 0
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> count a + count b
    | Neg a | Sqrt a -> count a
    | Select { a; b; if_true; if_false; _ } ->
        count a + count b + count if_true + count if_false
  in
  List.fold_left
    (fun acc s ->
      match s with
      | Let (_, e) | Store (_, e) -> acc + count e
      | Scatter { index; value; _ } -> acc + count index + count value
      | Reduce { rhs; _ } -> acc + count rhs)
    0 stmts

let scatter_count stmts =
  List.length (List.filter (function Scatter _ -> true | _ -> false) stmts)

let select_count stmts =
  let rec count = function
    | Select { a; b; if_true; if_false; _ } ->
        1 + count a + count b + count if_true + count if_false
    | Load _ | Scalar _ | Temp _ -> 0
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> count a + count b
    | Neg a | Sqrt a | Gather { index = a; _ } -> count a
  in
  List.fold_left
    (fun acc s ->
      match s with
      | Let (_, e) | Store (_, e) -> acc + count e
      | Scatter { index; value; _ } -> acc + count index + count value
      | Reduce { rhs; _ } -> acc + count rhs)
    0 stmts

let stream_key (r : ref_) =
  if r.scale = 0 then (r.array, 0, r.offset)
  else
    let m = ((r.offset mod r.scale) + abs r.scale) mod abs r.scale in
    (r.array, r.scale, m)

(* References in one congruence class coalesce only while their offsets
   stay within a small window of strides: x(k+10) and x(k+11) share a
   stream, but columns hundreds of words apart (LFK9's predictors) are
   separate streams even though their offsets are congruent. *)
let reuse_window_strides = 8

let ma_load_count stmts =
  let groups = Hashtbl.create 16 in
  List.iter
    (fun (r : ref_) ->
      let key = stream_key r in
      let prev = Option.value ~default:[] (Hashtbl.find_opt groups key) in
      Hashtbl.replace groups key (r.offset :: prev))
    (load_refs stmts);
  Hashtbl.fold
    (fun (_, scale, _) offsets acc ->
      if scale = 0 then acc + 1
      else
        let sorted = List.sort_uniq Int.compare offsets in
        let window = reuse_window_strides * abs scale in
        let clusters, _ =
          List.fold_left
            (fun (count, last) off ->
              match last with
              | Some l when off - l <= window -> (count, Some off)
              | _ -> (count + 1, Some off))
            (0, None) sorted
        in
        acc + clusters)
    groups 0
  |> fun streams -> streams + gather_count stmts

let ma_store_count stmts = List.length (store_refs stmts) + scatter_count stmts

let rec expr_scalars acc = function
  | Scalar s -> s :: acc
  | Load _ | Temp _ -> acc
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      expr_scalars (expr_scalars acc a) b
  | Neg a -> expr_scalars acc a
  | Sqrt a -> expr_scalars acc a
  | Gather { index; _ } -> expr_scalars acc index
  | Select { a; b; if_true; if_false; _ } ->
      expr_scalars
        (expr_scalars (expr_scalars (expr_scalars acc a) b) if_true)
        if_false

let scalars stmts =
  let all =
    List.fold_left
      (fun acc s ->
        match s with
        | Let (_, e) | Store (_, e) -> expr_scalars acc e
        | Scatter { index; value; _ } ->
            expr_scalars (expr_scalars acc index) value
        | Reduce { rhs; _ } -> expr_scalars acc rhs)
      [] stmts
  in
  dedup_keep_order (List.rev all)

let temps stmts =
  List.filter_map
    (function Let (t, _) -> Some t | Store _ | Scatter _ | Reduce _ -> None)
    stmts

let rec expr_temps acc = function
  | Temp t -> t :: acc
  | Load _ | Scalar _ -> acc
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      expr_temps (expr_temps acc a) b
  | Neg a -> expr_temps acc a
  | Sqrt a -> expr_temps acc a
  | Gather { index; _ } -> expr_temps acc index
  | Select { a; b; if_true; if_false; _ } ->
      expr_temps
        (expr_temps (expr_temps (expr_temps acc a) b) if_true)
        if_false

let validate stmts =
  let ( let* ) = Result.bind in
  let* () =
    let bound = Hashtbl.create 8 in
    List.fold_left
      (fun acc s ->
        let* () = acc in
        let used =
          match s with
          | Let (_, e) | Store (_, e) -> expr_temps [] e
          | Scatter { index; value; _ } ->
              expr_temps (expr_temps [] index) value
          | Reduce { rhs; _ } -> expr_temps [] rhs
        in
        let* () =
          List.fold_left
            (fun acc t ->
              let* () = acc in
              if Hashtbl.mem bound t then Ok ()
              else Error (Printf.sprintf "temp %s used before binding" t))
            (Ok ()) used
        in
        match s with
        | Let (t, _) ->
            if Hashtbl.mem bound t then
              Error (Printf.sprintf "temp %s bound twice" t)
            else begin
              Hashtbl.add bound t ();
              Ok ()
            end
        | Store _ | Scatter _ | Reduce _ -> Ok ())
      (Ok ()) stmts
  in
  let* () =
    let reduces =
      List.length
        (List.filter (function Reduce _ -> true | _ -> false) stmts)
    in
    if reduces > 1 then Error "more than one Reduce statement" else Ok ()
  in
  let* () =
    let bad_load =
      List.find_opt (fun (r : ref_) -> r.scale = 0) (load_refs stmts)
    in
    match bad_load with
    | Some r -> Error (Printf.sprintf "load of %s has zero scale" r.array)
    | None -> Ok ()
  in
  match List.find_opt (fun (r : ref_) -> r.scale = 0) (store_refs stmts) with
  | Some r -> Error (Printf.sprintf "store to %s has zero scale" r.array)
  | None -> Ok ()
