open Ir
open Convex_vpsim

let ref_ ?(scale = 1) array offset = { array; scale; offset }
let ld ?scale array offset = Load (ref_ ?scale array offset)

let plain ~id ~name ~description ~fortran ~body ~scalars ~arrays ?(acc = None)
    ?(aliases = []) n : Kernel.t =
  {
    id;
    name;
    description;
    fortran;
    body;
    acc;
    scalars;
    arrays;
    aliases;
    segments = [ { base = 0; length = n; shifts = [] } ];
    outer_ops = 0;
  }

let daxpy =
  plain ~id:101 ~name:"daxpy" ~description:"y(i) = a*x(i) + y(i)"
    ~fortran:"DO 1 i= 1,n\n1 Y(i)= A*X(i) + Y(i)"
    ~body:
      [ Store (ref_ "Y" 0, Add (Mul (Scalar "a", ld "X" 0), ld "Y" 0)) ]
    ~scalars:[ ("a", 2.5) ]
    ~arrays:[ ("X", 2048); ("Y", 2048) ]
    2000

let dot =
  plain ~id:102 ~name:"dot" ~description:"s = sum x(i)*y(i)"
    ~fortran:"S= 0.0\nDO 2 i= 1,n\n2 S= S + X(i)*Y(i)"
    ~body:[ Reduce { neg = false; rhs = Mul (ld "X" 0, ld "Y" 0) } ]
    ~acc:
      (Some
         {
           Kernel.init = Kernel.Zero;
           scale_by = None;
           store_to = Some (ref_ ~scale:0 "S" 0);
         })
    ~scalars:[]
    ~arrays:[ ("X", 2048); ("Y", 2048); ("S", 2) ]
    2000

let triad =
  plain ~id:103 ~name:"triad" ~description:"a(i) = b(i) + q*c(i)"
    ~fortran:"DO 3 i= 1,n\n3 A(i)= B(i) + Q*C(i)"
    ~body:[ Store (ref_ "A" 0, Add (ld "B" 0, Mul (Scalar "q", ld "C" 0))) ]
    ~scalars:[ ("q", 3.0) ]
    ~arrays:[ ("A", 2048); ("B", 2048); ("C", 2048) ]
    2000

let stencil5 =
  let b k = ld "B" k in
  plain ~id:104 ~name:"stencil5"
    ~description:"a(i) = w*(b(i-2)+b(i-1)+b(i)+b(i+1)+b(i+2))"
    ~fortran:"DO 4 i= 3,n-2\n4 A(i)= W*(B(i-2)+B(i-1)+B(i)+B(i+1)+B(i+2))"
    ~body:
      [
        Store
          ( ref_ "A" 2,
            Mul
              (Scalar "w", Add (Add (Add (Add (b 0, b 1), b 2), b 3), b 4))
          );
      ]
    ~scalars:[ ("w", 0.2) ]
    ~arrays:[ ("A", 2048); ("B", 2048) ]
    1996

let jacobi_row =
  plain ~id:105 ~name:"jacobi_row"
    ~description:"r(i) = 0.25*(u(i-1)+u(i+1)+un(i)+us(i))"
    ~fortran:"DO 5 i= 2,n-1\n5 R(i)= 0.25*(U(i-1)+U(i+1)+UN(i)+US(i))"
    ~body:
      [
        Store
          ( ref_ "R" 1,
            Mul
              ( Scalar "quarter",
                Add (Add (ld "U" 0, ld "U" 2), Add (ld "UN" 1, ld "US" 1))
              ) );
      ]
    ~scalars:[ ("quarter", 0.25) ]
    ~arrays:[ ("R", 2048); ("U", 2048); ("UN", 2048); ("US", 2048) ]
    2000

let gather16 =
  plain ~id:106 ~name:"gather16" ~description:"b(i) = q*a(16*i)"
    ~fortran:"DO 6 i= 1,n\n6 B(i)= Q*A(16*i)"
    ~body:[ Store (ref_ "B" 0, Mul (Scalar "q", ld ~scale:16 "A" 0)) ]
    ~scalars:[ ("q", 1.5) ]
    ~arrays:[ ("A", 16 * 1100); ("B", 2048) ]
    1000

let rcp_update =
  plain ~id:107 ~name:"rcp_update" ~description:"y(i) = y(i) + x(i)/z(i)"
    ~fortran:"DO 7 i= 1,n\n7 Y(i)= Y(i) + X(i)/Z(i)"
    ~body:
      [ Store (ref_ "Y" 0, Add (ld "Y" 0, Div (ld "X" 0, ld "Z" 0))) ]
    ~scalars:[]
    ~arrays:[ ("X", 2048); ("Y", 2048); ("Z", 2048) ]
    2000

let norm2 =
  plain ~id:108 ~name:"norm2" ~description:"y(i) = sqrt(x(i)*x(i) + z(i)*z(i))"
    ~fortran:"DO 8 i= 1,n\n8 Y(i)= SQRT(X(i)*X(i) + Z(i)*Z(i))"
    ~body:
      [
        Store
          ( ref_ "Y" 0,
            Sqrt
              (Add (Mul (ld "X" 0, ld "X" 0), Mul (ld "Z" 0, ld "Z" 0))) );
      ]
    ~scalars:[]
    ~arrays:[ ("X", 2048); ("Y", 2048); ("Z", 2048) ]
    2000

let permute =
  plain ~id:109 ~name:"permute" ~description:"y(i) = a(idx(i)) + y(i)"
    ~fortran:"DO 9 i= 1,n\n9 Y(i)= A(IDX(i)) + Y(i)"
    ~body:
      [
        Store
          ( ref_ "Y" 0,
            Add (Gather { array = "A"; offset = 0; index = ld "IDX" 0 },
                 ld "Y" 0) );
      ]
    ~scalars:[]
    ~arrays:[ ("A", 1024); ("IDX", 2048); ("Y", 2048) ]
    2000

let clip =
  plain ~id:110 ~name:"clip"
    ~description:"y(i) = w * min(x(i), ceiling) via compare and merge"
    ~fortran:"DO 10 i= 1,n\n10 Y(i)= W*MIN(X(i), C)"
    ~body:
      [
        Store
          ( ref_ "Y" 0,
            Mul
              ( Scalar "w",
                Select
                  {
                    op = CLt;
                    a = ld "X" 0;
                    b = Scalar "ceiling";
                    if_true = ld "X" 0;
                    if_false = Scalar "ceiling";
                  } ) );
      ]
    ~scalars:[ ("ceiling", 0.08); ("w", 2.0) ]
    ~arrays:[ ("X", 2048); ("Y", 2048) ]
    2000

let all =
  [ daxpy; dot; triad; stencil5; jacobi_row; gather16; rcp_update; norm2;
    permute; clip ]

let find id =
  match List.find_opt (fun (k : Kernel.t) -> k.id = id) all with
  | Some k -> k
  | None -> raise Not_found

(* gallery kernels count stores that alias their own loads (daxpy,
   rcp_update read and write Y); within one iteration the load precedes
   the store, so sequential semantics below match the vector ones *)
let run_reference (k : Kernel.t) store =
  let get = Store.get store in
  match k.id with
  | 101 ->
      let x = get "X" and y = get "Y" in
      let a = List.assoc "a" k.scalars in
      for i = 0 to 1999 do
        y.(i) <- (a *. x.(i)) +. y.(i)
      done
  | 102 ->
      let x = get "X" and y = get "Y" and s = get "S" in
      let acc = ref 0.0 in
      for i = 0 to 1999 do
        acc := !acc +. (x.(i) *. y.(i))
      done;
      s.(0) <- !acc
  | 103 ->
      let a = get "A" and b = get "B" and c = get "C" in
      let q = List.assoc "q" k.scalars in
      for i = 0 to 1999 do
        a.(i) <- b.(i) +. (q *. c.(i))
      done
  | 104 ->
      let a = get "A" and b = get "B" in
      let w = List.assoc "w" k.scalars in
      for i = 0 to 1995 do
        a.(i + 2) <-
          w *. (b.(i) +. b.(i + 1) +. b.(i + 2) +. b.(i + 3) +. b.(i + 4))
      done
  | 105 ->
      let r = get "R" and u = get "U" in
      let un = get "UN" and us = get "US" in
      for i = 0 to 1999 do
        r.(i + 1) <- 0.25 *. (u.(i) +. u.(i + 2) +. un.(i + 1) +. us.(i + 1))
      done
  | 106 ->
      let a = get "A" and b = get "B" in
      let q = List.assoc "q" k.scalars in
      for i = 0 to 999 do
        b.(i) <- q *. a.(16 * i)
      done
  | 107 ->
      let x = get "X" and y = get "Y" and z = get "Z" in
      for i = 0 to 1999 do
        y.(i) <- y.(i) +. (x.(i) /. z.(i))
      done
  | 108 ->
      let x = get "X" and y = get "Y" and z = get "Z" in
      for i = 0 to 1999 do
        y.(i) <- Float.sqrt ((x.(i) *. x.(i)) +. (z.(i) *. z.(i)))
      done
  | 109 ->
      let a = get "A" and idx = get "IDX" and y = get "Y" in
      for i = 0 to 1999 do
        y.(i) <- a.(int_of_float idx.(i)) +. y.(i)
      done
  | 110 ->
      let x = get "X" and y = get "Y" in
      let c = List.assoc "ceiling" k.scalars in
      let w = List.assoc "w" k.scalars in
      for i = 0 to 1999 do
        y.(i) <- w *. (if x.(i) < c then x.(i) else c)
      done
  | id -> invalid_arg (Printf.sprintf "Gallery.run_reference: no kernel %d" id)

let output_arrays (k : Kernel.t) =
  match k.id with
  | 101 | 107 | 108 | 109 | 110 -> [ "Y" ]
  | 102 -> [ "S" ]
  | 103 -> [ "A" ]
  | 104 -> [ "A" ]
  | 105 -> [ "R" ]
  | 106 -> [ "B" ]
  | id -> invalid_arg (Printf.sprintf "Gallery.output_arrays: no kernel %d" id)
