let name_seed name =
  (* FNV-1a over the array name, reduced to a small positive seed *)
  let h = ref 2166136261 in
  String.iter
    (fun c ->
      h := (!h lxor Char.code c) * 16777619 land 0x3FFFFFFF)
    name;
  !h

(* Arrays whose name starts with IDX hold integer-valued index data (a
   deterministic pseudo-random permutation pattern over [0; 1024)), so
   gather/scatter kernels built on the default fill stay in bounds. *)
let index_array name =
  String.length name >= 3 && String.sub name 0 3 = "IDX"

let value name i =
  if index_array name then
    float_of_int (((i * 7919) + name_seed name) land 1023)
  else
    let mixed = ((i * 1664525) + name_seed name) land 0x3FFFFFFF in
    0.001 +. (0.15 *. float_of_int (mixed mod 9973) /. 9973.0)

let fill name n = Array.init n (value name)

let store_of (k : Kernel.t) =
  let base =
    List.map (fun (name, size) -> (name, fill name size)) k.arrays
  in
  let aliased =
    List.map
      (fun (alias, target) -> (alias, List.assoc target base))
      k.aliases
  in
  Convex_vpsim.Store.create (base @ aliased)

let sregs_of (k : Kernel.t) = k.scalars
