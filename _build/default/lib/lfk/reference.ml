open Convex_vpsim

let scalar (k : Kernel.t) name =
  match List.assoc_opt name k.scalars with
  | Some v -> v
  | None ->
      invalid_arg (Printf.sprintf "Reference: kernel %s has no scalar %s"
                     k.name name)

let lfk1 k store =
  let x = Store.get store "X"
  and y = Store.get store "Y"
  and zx = Store.get store "ZX" in
  let q = scalar k "q" and r = scalar k "r" and t = scalar k "t" in
  for i = 0 to 1000 do
    x.(i) <- q +. (y.(i) *. ((r *. zx.(i + 10)) +. (t *. zx.(i + 11))))
  done

let lfk2 _ store =
  let x = Store.get store "X" and v = Store.get store "V" in
  let ii = ref 101 and ipntp = ref 0 in
  while !ii > 0 do
    let ipnt = !ipntp in
    ipntp := !ipntp + !ii;
    ii := !ii / 2;
    let i = ref !ipntp in
    let k = ref (ipnt + 1) in
    while !k < !ipntp do
      incr i;
      x.(!i) <-
        x.(!k) -. (v.(!k) *. x.(!k - 1)) -. (v.(!k + 1) *. x.(!k + 1));
      k := !k + 2
    done
  done

let lfk3 _ store =
  let z = Store.get store "Z"
  and x = Store.get store "X"
  and q = Store.get store "Q" in
  let acc = ref 0.0 in
  for i = 0 to 1000 do
    acc := !acc +. (z.(i) *. x.(i))
  done;
  q.(0) <- !acc

let lfk4 k store =
  let xz = Store.get store "XZ"
  and y = Store.get store "Y"
  and x = Store.get store "X" in
  let y5 = scalar k "y5" in
  let m = (1001 - 7) / 2 in
  List.iter
    (fun kk ->
      let temp = ref x.(kk - 1) in
      let lw = ref (kk - 6) in
      let j = ref 4 in
      while !j < 1001 do
        temp := !temp -. (xz.(!lw) *. y.(!j));
        incr lw;
        j := !j + 5
      done;
      x.(kk - 1) <- y5 *. !temp)
    [ 6; 6 + m; 6 + (2 * m) ]

let lfk5 _ store =
  let x = Store.get store "X"
  and y = Store.get store "Y"
  and z = Store.get store "Z" in
  for i = 1 to 1000 do
    x.(i) <- z.(i) *. (y.(i) -. x.(i - 1))
  done

let lfk11 _ store =
  let x = Store.get store "X" and y = Store.get store "Y" in
  for k = 1 to 1000 do
    x.(k) <- x.(k - 1) +. y.(k)
  done

let lfk6 _ store =
  let b = Store.get store "B" and w = Store.get store "W" in
  let dim = 64 in
  for i = 1 to dim - 1 do
    for k = 0 to i - 1 do
      w.(i) <- w.(i) +. (b.((dim * i) + k) *. w.(k))
    done
  done

let lfk7 k store =
  let x = Store.get store "X"
  and u = Store.get store "U"
  and y = Store.get store "Y"
  and z = Store.get store "Z" in
  let q = scalar k "q" and r = scalar k "r" and t = scalar k "t" in
  for i = 0 to 994 do
    x.(i) <-
      u.(i)
      +. (r *. (z.(i) +. (r *. y.(i))))
      +. (t
         *. (u.(i + 3)
            +. (r *. (u.(i + 2) +. (r *. u.(i + 1))))
            +. (t
               *. (u.(i + 6) +. (q *. (u.(i + 5) +. (q *. u.(i + 4))))))))
  done

let lfk8 k store =
  let u1 = Store.get store "U1"
  and u2 = Store.get store "U2"
  and u3 = Store.get store "U3"
  and u1o = Store.get store "U1O"
  and u2o = Store.get store "U2O"
  and u3o = Store.get store "U3O"
  and du1 = Store.get store "DU1"
  and du2 = Store.get store "DU2"
  and du3 = Store.get store "DU3" in
  let a11 = scalar k "a11" and a12 = scalar k "a12" and a13 = scalar k "a13"
  and a21 = scalar k "a21" and a22 = scalar k "a22" and a23 = scalar k "a23"
  and a31 = scalar k "a31" and a32 = scalar k "a32" and a33 = scalar k "a33"
  and sg = scalar k "sig" in
  let d = 4 in
  List.iter
    (fun kx ->
      for t = 0 to 98 do
        let ky = t + 1 in
        let at c = kx + (d * (ky + c)) in
        let d1 = u1.(at 1) -. u1.(at (-1))
        and d2 = u2.(at 1) -. u2.(at (-1))
        and d3 = u3.(at 1) -. u3.(at (-1)) in
        du1.(ky) <- d1;
        du2.(ky) <- d2;
        du3.(ky) <- d3;
        let line u uo (c1, c2, c3) =
          uo.(at 0) <-
            u.(at 0) +. (c1 *. d1) +. (c2 *. d2) +. (c3 *. d3)
            +. (sg *. (u.(at 0 + 1) -. (2.0 *. u.(at 0)) +. u.(at 0 - 1)))
        in
        line u1 u1o (a11, a12, a13);
        line u2 u2o (a21, a22, a23);
        line u3 u3o (a31, a32, a33)
      done)
    [ 1; 2 ]

let lfk9 k store =
  let px = Store.get store "PX" in
  let col c i = (101 * c) + i in
  let dm22 = scalar k "dm22" and dm23 = scalar k "dm23"
  and dm24 = scalar k "dm24" and dm25 = scalar k "dm25"
  and dm26 = scalar k "dm26" and dm27 = scalar k "dm27"
  and dm28 = scalar k "dm28" and c0 = scalar k "c0" in
  for i = 0 to 100 do
    px.(col 0 i) <-
      (dm28 *. px.(col 12 i))
      +. (dm27 *. px.(col 11 i))
      +. (dm26 *. px.(col 10 i))
      +. (dm25 *. px.(col 9 i))
      +. (dm24 *. px.(col 8 i))
      +. (dm23 *. px.(col 7 i))
      +. (dm22 *. px.(col 6 i))
      +. (c0 *. (px.(col 4 i) +. px.(col 5 i)))
      +. px.(col 2 i)
  done

let lfk10 _ store =
  let px = Store.get store "PX" and cx = Store.get store "CX" in
  let col c i = (101 * c) + i in
  for i = 0 to 100 do
    let t = ref cx.(col 4 i) in
    for c = 4 to 12 do
      let next = !t -. px.(col c i) in
      px.(col c i) <- !t;
      t := next
    done;
    px.(col 13 i) <- !t
  done

let lfk12 _ store =
  let x = Store.get store "X" and y = Store.get store "Y" in
  for i = 0 to 999 do
    x.(i) <- y.(i + 1) -. y.(i)
  done

let run (k : Kernel.t) store =
  match k.id with
  | 1 -> lfk1 k store
  | 2 -> lfk2 k store
  | 3 -> lfk3 k store
  | 4 -> lfk4 k store
  | 5 -> lfk5 k store
  | 6 -> lfk6 k store
  | 7 -> lfk7 k store
  | 8 -> lfk8 k store
  | 9 -> lfk9 k store
  | 10 -> lfk10 k store
  | 11 -> lfk11 k store
  | 12 -> lfk12 k store
  | id -> invalid_arg (Printf.sprintf "Reference.run: no kernel %d" id)

let output_arrays (k : Kernel.t) =
  match k.id with
  | 1 | 7 | 12 -> [ "X" ]
  | 2 | 4 | 5 | 11 -> [ "X" ]
  | 3 -> [ "Q" ]
  | 6 -> [ "W" ]
  | 8 -> [ "U1O"; "U2O"; "U3O"; "DU1"; "DU2"; "DU3" ]
  | 9 | 10 -> [ "PX" ]
  | id -> invalid_arg (Printf.sprintf "Reference.output_arrays: no kernel %d" id)
