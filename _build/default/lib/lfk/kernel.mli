(** A benchmark kernel: the high-level application (A) plus everything the
    compiler and the simulator need to run it — scalar constant values,
    array sizes, outer-loop structure, and the reduction accumulator
    protocol.

    The inner loop is [body], executed for every element of every segment.
    Segments model the outer loop: per-array word shifts implement outer
    address arithmetic (2-D columns, pass offsets), and an optional
    accumulator is re-initialised / stored once per segment (the scalar
    code the MACS inner-loop model deliberately leaves out). *)

type segment_spec = {
  base : int;
  length : int;
  shifts : (string * int) list;
}

type acc_init = Zero | Load_from of Ir.ref_

(** Reduction accumulator protocol.  [init] runs in the segment prologue;
    after the segment the accumulator is optionally multiplied by scalar
    [scale_by] and stored to [store_to] (a scale-0 reference resolved with
    the segment's shifts). *)
type acc_spec = {
  init : acc_init;
  scale_by : string option;
  store_to : Ir.ref_ option;
}

type t = {
  id : int;  (** LFK number (1..12) *)
  name : string;
  description : string;
  fortran : string;  (** original Fortran listing, for documentation *)
  body : Ir.stmt list;
  acc : acc_spec option;
  scalars : (string * float) list;
      (** loop-invariant scalars and their runtime values *)
  arrays : (string * int) list;  (** array sizes in words *)
  aliases : (string * string) list;
      (** [(alias, target)]: the alias names the same storage as target —
          used when loads and stores of one Fortran array need different
          per-segment shifts (LFK2's in-place ICCG passes, LFK6's
          recurrence) *)
  segments : segment_spec list;
  outer_ops : int;
      (** scalar bookkeeping instructions the outer loop executes per
          segment (pointer updates, trip-count arithmetic, exit tests) —
          unmodeled by the inner-loop bounds, visible in measured time *)
}

val flops : t -> int
(** Floating-point operations per inner-loop iteration, from the IR. *)

val total_elements : t -> int

val has_reduction : t -> bool

val all_array_names : t -> string list
(** Declared arrays plus aliases. *)

val validate : t -> (unit, string) result
(** Well-formedness: valid body IR; a [Reduce] statement iff [acc] is
    provided; every scalar named in the body is given a value; every array
    referenced (body and accumulator references) is declared or aliased;
    alias targets are declared; segments are nonempty with positive
    lengths. *)
