(** The ten Lawrence Livermore Fortran Kernels of the paper's case study:
    LFK 1, 2, 3, 4, 6, 7, 8, 9, 10 and 12 (paper §1, §4), defined in the
    loop IR with the standard Livermore loop spans.

    Layout conventions: multi-dimensional Fortran arrays are expressed as
    word-addressed streams — 2-D columns become per-segment shifts, so the
    inner loop is always affine in its index.  LFK6's B matrix is laid out
    with the inner index contiguous (unit stride), matching the paper's
    observation that "most memory accesses are unit stride". *)

val lfk1 : Kernel.t
(** Hydro fragment: [x(k) = q + y(k)*(r*zx(k+10) + t*zx(k+11))]. *)

val lfk2 : Kernel.t
(** Incomplete Cholesky — conjugate gradient excerpt: log₂(n) passes of
    halving length, stride-2 loads, in-place update. *)

val lfk3 : Kernel.t
(** Inner product: [q = sum z(k)*x(k)]. *)

val lfk4 : Kernel.t
(** Banded linear equations: per-band dot product with stride-5 loads and
    a loop-carried scalar update. *)

val lfk6 : Kernel.t
(** General linear recurrence: triangular reduction, segment lengths
    growing 1..n-1. *)

val lfk7 : Kernel.t
(** Equation of state fragment: 16 flops per iteration, deep operand
    reuse of the shifted [u] stream. *)

val lfk8 : Kernel.t
(** ADI integration: 36 flops, six stored streams, more scalar
    coefficients than the machine has scalar registers. *)

val lfk9 : Kernel.t
(** Numerical integration (integrate predictors): 10 loaded columns. *)

val lfk10 : Kernel.t
(** Numerical differentiation (difference predictors): pure add-pipe
    chain with 10 loads and 10 stores. *)

val lfk12 : Kernel.t
(** First difference: [x(k) = y(k+1) - y(k)]. *)

val lfk5 : Kernel.t
(** Tri-diagonal elimination: a loop-carried recurrence through x(i-1).
    Not in the paper's vectorized case study; compiles to scalar mode. *)

val lfk11 : Kernel.t
(** First sum (prefix sum): likewise loop-carried and scalar. *)

val all : Kernel.t list
(** The ten vectorizable kernels of the paper's case study, in paper
    order (1,2,3,4,6,7,8,9,10,12). *)

val scalar_kernels : Kernel.t list
(** The two non-vectorizable kernels (5 and 11) of the paper's benchmark
    range, for the scalar-mode extension. *)

val find : int -> Kernel.t
(** By LFK number, over both sets; raises [Not_found] otherwise. *)
