open Ir

let ref_ ?(scale = 1) array offset = { array; scale; offset }
let ld ?scale array offset = Load (ref_ ?scale array offset)
let sc name = Scalar name
let t name = Temp name

(* ------------------------------------------------------------------ *)
(* LFK1: hydro fragment                                               *)
(* ------------------------------------------------------------------ *)

let lfk1 : Kernel.t =
  {
    id = 1;
    name = "lfk1";
    description = "hydro fragment";
    fortran =
      "DO 1 k = 1,n\n1 X(k) = Q + Y(k)*(R*ZX(k+10) + T*ZX(k+11))";
    body =
      [
        Store
          ( ref_ "X" 0,
            Add
              ( sc "q",
                Mul
                  ( ld "Y" 0,
                    Add (Mul (sc "r", ld "ZX" 10), Mul (sc "t", ld "ZX" 11))
                  ) ) );
      ];
    acc = None;
    scalars = [ ("q", 0.5); ("r", 0.25); ("t", 0.125) ];
    arrays = [ ("X", 1024); ("Y", 1024); ("ZX", 1024) ];
    aliases = [];
    segments = [ { base = 0; length = 1001; shifts = [] } ];
    outer_ops = 0;
  }

(* ------------------------------------------------------------------ *)
(* LFK2: incomplete Cholesky - conjugate gradient excerpt             *)
(* ------------------------------------------------------------------ *)

(* Passes of halving length: pass p reads x[ipnt..] with stride 2 and
   writes x[ipntp..] densely; loads and stores need different shifts for
   the same storage, hence the XS alias. *)
let lfk2_segments =
  let rec go ipntp ii acc =
    if ii <= 0 then List.rev acc
    else
      let ipnt = ipntp in
      let ipntp = ipntp + ii in
      let len = ii / 2 in
      let seg =
        {
          Kernel.base = 0;
          length = len;
          shifts = [ ("X", ipnt); ("V", ipnt); ("XS", ipntp + 1) ];
        }
      in
      let acc = if len > 0 then seg :: acc else acc in
      go ipntp (ii / 2) acc
  in
  go 0 101 []

let lfk2 : Kernel.t =
  {
    id = 2;
    name = "lfk2";
    description = "incomplete Cholesky conjugate gradient";
    fortran =
      "ii= n\n\
       ipntp= 0\n\
       222 ipnt= ipntp\n\
       ipntp= ipntp+ii\n\
       ii= ii/2\n\
       i= ipntp\n\
       DO 2 k= ipnt+2,ipntp,2\n\
       i= i+1\n\
       2 X(i)= X(k) - V(k)*X(k-1) - V(k+1)*X(k+1)\n\
       IF (ii.GT.1) GO TO 222";
    body =
      [
        Store
          ( ref_ "XS" 0,
            Sub
              ( Sub
                  ( ld ~scale:2 "X" 1,
                    Mul (ld ~scale:2 "V" 1, ld ~scale:2 "X" 0) ),
                Mul (ld ~scale:2 "V" 2, ld ~scale:2 "X" 2) ) );
      ];
    acc = None;
    scalars = [];
    arrays = [ ("X", 256); ("V", 256) ];
    aliases = [ ("XS", "X") ];
    segments = lfk2_segments;
    outer_ops = 10;
  }

(* ------------------------------------------------------------------ *)
(* LFK3: inner product                                                *)
(* ------------------------------------------------------------------ *)

let lfk3 : Kernel.t =
  {
    id = 3;
    name = "lfk3";
    description = "inner product";
    fortran = "Q= 0.0\nDO 3 k= 1,n\n3 Q= Q + Z(k)*X(k)";
    body = [ Reduce { neg = false; rhs = Mul (ld "Z" 0, ld "X" 0) } ];
    acc =
      Some
        {
          init = Kernel.Zero;
          scale_by = None;
          store_to = Some (ref_ ~scale:0 "Q" 0);
        };
    scalars = [];
    arrays = [ ("Z", 1024); ("X", 1024); ("Q", 2) ];
    aliases = [];
    segments = [ { base = 0; length = 1001; shifts = [] } ];
    outer_ops = 0;
  }

(* ------------------------------------------------------------------ *)
(* LFK4: banded linear equations                                      *)
(* ------------------------------------------------------------------ *)

(* Three bands (m = (1001-7)/2 apart); each is a 200-element dot product
   with stride-5 accesses to Y, reduced into a loop-carried scalar. *)
let lfk4_segments =
  let m = (1001 - 7) / 2 in
  List.map
    (fun k ->
      {
        Kernel.base = 0;
        length = 200;
        shifts = [ ("XZ", k - 6); ("X", k - 1) ];
      })
    [ 6; 6 + m; 6 + (2 * m) ]

let lfk4 : Kernel.t =
  {
    id = 4;
    name = "lfk4";
    description = "banded linear equations";
    fortran =
      "m= (1001-7)/2\n\
       DO 444 k= 7,1001,m\n\
       lw= k-6\n\
       temp= X(k-1)\n\
       DO 4 j= 5,n,5\n\
       temp= temp - XZ(lw)*Y(j)\n\
       4 lw= lw+1\n\
       X(k-1)= Y(5)*temp\n\
       444 CONTINUE";
    body =
      [ Reduce { neg = true; rhs = Mul (ld "XZ" 0, ld ~scale:5 "Y" 4) } ];
    acc =
      Some
        {
          init = Kernel.Load_from (ref_ ~scale:0 "X" 0);
          scale_by = Some "y5";
          store_to = Some (ref_ ~scale:0 "X" 0);
        };
    scalars = [ ("y5", Data.value "Y" 4) ];
    arrays = [ ("XZ", 1280); ("Y", 1024); ("X", 1024) ];
    aliases = [];
    segments = lfk4_segments;
    outer_ops = 6;
  }

(* ------------------------------------------------------------------ *)
(* LFK6: general linear recurrence equations                          *)
(* ------------------------------------------------------------------ *)

(* Triangular: segment i (1..63) is a dot product of length i between
   row i of B and the prefix of W, accumulated into w(i) in place.  B is
   laid out with the summation index contiguous (unit stride). *)
let lfk6_dim = 64

let lfk6_segments =
  List.init (lfk6_dim - 1) (fun j ->
      let i = j + 1 in
      {
        Kernel.base = 0;
        length = i;
        shifts = [ ("B", lfk6_dim * i); ("WS", i) ];
      })

let lfk6 : Kernel.t =
  {
    id = 6;
    name = "lfk6";
    description = "general linear recurrence equations";
    fortran =
      "DO 6 i= 2,n\nDO 6 k= 1,i-1\n6 W(i)= W(i) + B(i,k)*W(k)";
    body = [ Reduce { neg = false; rhs = Mul (ld "B" 0, ld "W" 0) } ];
    acc =
      Some
        {
          init = Kernel.Load_from (ref_ ~scale:0 "WS" 0);
          scale_by = None;
          store_to = Some (ref_ ~scale:0 "WS" 0);
        };
    scalars = [];
    arrays = [ ("B", (lfk6_dim * lfk6_dim) + lfk6_dim); ("W", 128) ];
    aliases = [ ("WS", "W") ];
    segments = lfk6_segments;
    outer_ops = 4;
  }

(* ------------------------------------------------------------------ *)
(* LFK7: equation of state fragment                                   *)
(* ------------------------------------------------------------------ *)

let lfk7 : Kernel.t =
  {
    id = 7;
    name = "lfk7";
    description = "equation of state fragment";
    fortran =
      "DO 7 k= 1,n\n\
       7 X(k)= U(k) + R*(Z(k) + R*Y(k))\n\
      \       + T*(U(k+3) + R*(U(k+2) + R*U(k+1))\n\
      \       + T*(U(k+6) + Q*(U(k+5) + Q*U(k+4))))";
    body =
      [
        Store
          ( ref_ "X" 0,
            Add
              ( Add
                  ( ld "U" 0,
                    Mul (sc "r", Add (ld "Z" 0, Mul (sc "r", ld "Y" 0))) ),
                Mul
                  ( sc "t",
                    Add
                      ( Add
                          ( ld "U" 3,
                            Mul
                              ( sc "r",
                                Add (ld "U" 2, Mul (sc "r", ld "U" 1)) ) ),
                        Mul
                          ( sc "t",
                            Add
                              ( ld "U" 6,
                                Mul
                                  ( sc "q",
                                    Add (ld "U" 5, Mul (sc "q", ld "U" 4))
                                  ) ) ) ) ) ) );
      ];
    acc = None;
    scalars = [ ("q", 0.5); ("r", 0.25); ("t", 0.125) ];
    arrays = [ ("X", 1024); ("U", 1024); ("Y", 1024); ("Z", 1024) ];
    aliases = [];
    segments = [ { base = 0; length = 995; shifts = [] } ];
    outer_ops = 0;
  }

(* ------------------------------------------------------------------ *)
(* LFK8: ADI integration                                              *)
(* ------------------------------------------------------------------ *)

(* Vectorized over ky (99 elements) after interchanging the tiny kx loop
   outward: one segment per kx in {1,2} (0-based).  U arrays are the nl1
   planes, U*O the nl2 output planes, indexed [kx + 4*ky]; DU streams are
   indexed by ky.  Eleven scalar coefficients force scalar-register
   spills, whose per-iteration reloads split chimes (paper §4.4, LFK8). *)
let lfk8_dim1 = 4

let u_line u uo (a1, a2, a3) =
  [
    Store
      ( ref_ ~scale:lfk8_dim1 uo 0,
        Add
          ( Add
              ( Add
                  ( Add (ld ~scale:lfk8_dim1 u 0, Mul (sc a1, t "du1")),
                    Mul (sc a2, t "du2") ),
                Mul (sc a3, t "du3") ),
            Mul
              ( sc "sig",
                Add
                  ( Sub
                      ( ld ~scale:lfk8_dim1 u 1,
                        Mul (sc "two", ld ~scale:lfk8_dim1 u 0) ),
                    ld ~scale:lfk8_dim1 u (-1) ) ) ) );
  ]

let lfk8 : Kernel.t =
  {
    id = 8;
    name = "lfk8";
    description = "ADI integration";
    fortran =
      "DO 8 ky= 2,n\n\
       DO 8 kx= 2,3\n\
       DU1(ky)= U1(kx,ky+1,nl1) - U1(kx,ky-1,nl1)\n\
       DU2(ky)= U2(kx,ky+1,nl1) - U2(kx,ky-1,nl1)\n\
       DU3(ky)= U3(kx,ky+1,nl1) - U3(kx,ky-1,nl1)\n\
       U1(kx,ky,nl2)= U1(kx,ky,nl1) + A11*DU1(ky) + A12*DU2(ky)\n\
      \  + A13*DU3(ky) + SIG*(U1(kx+1,ky,nl1) - 2.*U1(kx,ky,nl1)\n\
      \  + U1(kx-1,ky,nl1))\n\
       ... (same for U2 with A2j, U3 with A3j)\n\
       8 CONTINUE";
    body =
      [
        Let
          ( "du1",
            Sub (ld ~scale:lfk8_dim1 "U1" lfk8_dim1,
                 ld ~scale:lfk8_dim1 "U1" (-lfk8_dim1)) );
        Store (ref_ "DU1" 0, t "du1");
        Let
          ( "du2",
            Sub (ld ~scale:lfk8_dim1 "U2" lfk8_dim1,
                 ld ~scale:lfk8_dim1 "U2" (-lfk8_dim1)) );
        Store (ref_ "DU2" 0, t "du2");
        Let
          ( "du3",
            Sub (ld ~scale:lfk8_dim1 "U3" lfk8_dim1,
                 ld ~scale:lfk8_dim1 "U3" (-lfk8_dim1)) );
        Store (ref_ "DU3" 0, t "du3");
      ]
      @ u_line "U1" "U1O" ("a11", "a12", "a13")
      @ u_line "U2" "U2O" ("a21", "a22", "a23")
      @ u_line "U3" "U3O" ("a31", "a32", "a33");
    acc = None;
    scalars =
      [
        ("a11", 0.10); ("a12", 0.11); ("a13", 0.12);
        ("a21", 0.13); ("a22", 0.14); ("a23", 0.15);
        ("a31", 0.16); ("a32", 0.17); ("a33", 0.18);
        ("sig", 0.25); ("two", 2.0);
      ];
    arrays =
      [
        ("U1", 512); ("U2", 512); ("U3", 512);
        ("U1O", 512); ("U2O", 512); ("U3O", 512);
        ("DU1", 128); ("DU2", 128); ("DU3", 128);
      ];
    aliases = [];
    segments =
      List.map
        (fun kx ->
          {
            Kernel.base = 1;
            length = 99;
            shifts =
              [
                ("U1", kx); ("U2", kx); ("U3", kx);
                ("U1O", kx); ("U2O", kx); ("U3O", kx);
              ];
          })
        [ 1; 2 ];
    outer_ops = 4;
  }

(* ------------------------------------------------------------------ *)
(* LFK9: integrate predictors                                         *)
(* ------------------------------------------------------------------ *)

(* PX stores each column as a contiguous 101-element stream at offset
   101*c, so the loop over i is unit stride within every column. *)
let lfk9_col c = 101 * c

let lfk9 : Kernel.t =
  let px c = ld "PX" (lfk9_col c) in
  {
    id = 9;
    name = "lfk9";
    description = "integrate predictors";
    fortran =
      "DO 9 i= 1,n\n\
       9 PX(i,1)= DM28*PX(i,13) + DM27*PX(i,12) + DM26*PX(i,11)\n\
      \   + DM25*PX(i,10) + DM24*PX(i,9) + DM23*PX(i,8)\n\
      \   + DM22*PX(i,7) + C0*(PX(i,5) + PX(i,6)) + PX(i,3)";
    body =
      [
        Store
          ( ref_ "PX" (lfk9_col 0),
            Add
              ( Add
                  ( Add
                      ( Add
                          ( Add
                              ( Add
                                  ( Add
                                      ( Add
                                          ( Mul (sc "dm28", px 12),
                                            Mul (sc "dm27", px 11) ),
                                        Mul (sc "dm26", px 10) ),
                                    Mul (sc "dm25", px 9) ),
                                Mul (sc "dm24", px 8) ),
                            Mul (sc "dm23", px 7) ),
                        Mul (sc "dm22", px 6) ),
                    Mul (sc "c0", Add (px 4, px 5)) ),
                px 2 ) );
      ];
    acc = None;
    scalars =
      [
        ("dm22", 0.10); ("dm23", 0.12); ("dm24", 0.14); ("dm25", 0.16);
        ("dm26", 0.18); ("dm27", 0.20); ("dm28", 0.22); ("c0", 0.30);
      ];
    arrays = [ ("PX", (101 * 13) + 32) ];
    aliases = [];
    segments = [ { base = 0; length = 101; shifts = [] } ];
    outer_ops = 0;
  }

(* ------------------------------------------------------------------ *)
(* LFK10: difference predictors                                       *)
(* ------------------------------------------------------------------ *)

let lfk10_col c = 101 * c

let lfk10 : Kernel.t =
  let px c = ld "PX" (lfk10_col c) in
  let store_px c e = Store (ref_ "PX" (lfk10_col c), e) in
  (* t0 = cx(i,5); t_{k+1} = t_k - px(i,5+k); px(i,5+k) = t_k *)
  let chain =
    List.concat
      (List.init 9 (fun k ->
           let cur = Printf.sprintf "t%d" k in
           let next = Printf.sprintf "t%d" (k + 1) in
           [ Let (next, Sub (t cur, px (4 + k))); store_px (4 + k) (t cur) ]))
  in
  {
    id = 10;
    name = "lfk10";
    description = "difference predictors";
    fortran =
      "DO 10 i= 1,n\n\
       AR= CX(i,5)\n\
       BR= AR - PX(i,5)\n\
       PX(i,5)= AR\n\
       CR= BR - PX(i,6)\n\
       PX(i,6)= BR\n\
       ... (chain continues through PX(i,14))";
    body = (Let ("t0", ld "CX" (lfk10_col 4)) :: chain) @ [ store_px 13 (t "t9") ];
    acc = None;
    scalars = [];
    arrays = [ ("PX", (101 * 14) + 32); ("CX", (101 * 5) + 32) ];
    aliases = [];
    segments = [ { base = 0; length = 101; shifts = [] } ];
    outer_ops = 0;
  }

(* ------------------------------------------------------------------ *)
(* LFK12: first difference                                            *)
(* ------------------------------------------------------------------ *)

let lfk12 : Kernel.t =
  {
    id = 12;
    name = "lfk12";
    description = "first difference";
    fortran = "DO 12 k= 1,n\n12 X(k)= Y(k+1) - Y(k)";
    body = [ Store (ref_ "X" 0, Sub (ld "Y" 1, ld "Y" 0)) ];
    acc = None;
    scalars = [];
    arrays = [ ("X", 1024); ("Y", 1024) ];
    aliases = [];
    segments = [ { base = 0; length = 1000; shifts = [] } ];
    outer_ops = 0;
  }

(* ------------------------------------------------------------------ *)
(* LFK5 and LFK11: the non-vectorizable recurrences                    *)
(* ------------------------------------------------------------------ *)

(* These two kernels sit inside the paper's "first twelve" range but are
   excluded from its vectorized case study: both carry a flow dependence
   through x(i-1), so the compiler must emit scalar-mode code.  They are
   provided (in [scalar_kernels], not [all]) to exercise the scalar-mode
   path and the dependence-height bound. *)

let lfk5 : Kernel.t =
  {
    id = 5;
    name = "lfk5";
    description = "tri-diagonal elimination, below diagonal";
    fortran = "DO 5 i= 2,n\n5 X(i)= Z(i)*(Y(i) - X(i-1))";
    body =
      [
        Store
          (ref_ "X" 1, Mul (ld "Z" 1, Sub (ld "Y" 1, ld "X" 0)));
      ];
    acc = None;
    scalars = [];
    arrays = [ ("X", 1024); ("Y", 1024); ("Z", 1024) ];
    aliases = [];
    segments = [ { base = 0; length = 1000; shifts = [] } ];
    outer_ops = 0;
  }

let lfk11 : Kernel.t =
  {
    id = 11;
    name = "lfk11";
    description = "first sum (prefix sum)";
    fortran = "DO 11 k= 2,n\n11 X(k)= X(k-1) + Y(k)";
    body = [ Store (ref_ "X" 1, Add (ld "X" 0, ld "Y" 1)) ];
    acc = None;
    scalars = [];
    arrays = [ ("X", 1024); ("Y", 1024) ];
    aliases = [];
    segments = [ { base = 0; length = 1000; shifts = [] } ];
    outer_ops = 0;
  }

let scalar_kernels = [ lfk5; lfk11 ]

let all = [ lfk1; lfk2; lfk3; lfk4; lfk6; lfk7; lfk8; lfk9; lfk10; lfk12 ]

let find id =
  match
    List.find_opt (fun (k : Kernel.t) -> k.id = id) (all @ scalar_kernels)
  with
  | Some k -> k
  | None -> raise Not_found
