(** Deterministic initial data, standing in for the Livermore driver's
    array initialisation.

    Values are small positive floats derived from the array name and the
    element index, so runs are reproducible, products stay bounded, and
    divisions are safe. *)

val value : string -> int -> float
(** Element [i] of the array named [name]; strictly positive, below 0.2.
    Exception: arrays whose name starts with [IDX] hold integer-valued
    pseudo-random indices in [0; 1024), for gather/scatter kernels. *)

val fill : string -> int -> float array

val store_of : Kernel.t -> Convex_vpsim.Store.t
(** Build the kernel's initial store: every declared array filled by
    {!fill}, and every alias bound to the same storage as its target. *)

val sregs_of : Kernel.t -> (string * float) list
(** The kernel's scalar environment (just [Kernel.scalars]; provided here
    for symmetry with {!store_of}). *)
