lib/lfk/kernels.pp.ml: Data Ir Kernel List Printf
