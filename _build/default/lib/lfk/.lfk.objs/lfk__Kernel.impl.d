lib/lfk/kernel.pp.ml: Ir List Option Printf Result
