lib/lfk/data.pp.ml: Array Char Convex_vpsim Kernel List String
