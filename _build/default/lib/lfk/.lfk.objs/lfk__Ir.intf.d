lib/lfk/ir.pp.mli: Format
