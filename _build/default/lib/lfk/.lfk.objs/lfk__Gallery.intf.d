lib/lfk/gallery.pp.mli: Convex_vpsim Kernel
