lib/lfk/data.pp.mli: Convex_vpsim Kernel
