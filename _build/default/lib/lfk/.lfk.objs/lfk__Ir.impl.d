lib/lfk/ir.pp.ml: Hashtbl Int List Option Ppx_deriving_runtime Printf Result String
