lib/lfk/kernels.pp.mli: Kernel
