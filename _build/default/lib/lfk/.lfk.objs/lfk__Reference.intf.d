lib/lfk/reference.pp.mli: Convex_vpsim Kernel
