lib/lfk/reference.pp.ml: Array Convex_vpsim Kernel List Printf Store
