lib/lfk/gallery.pp.ml: Array Convex_vpsim Float Ir Kernel List Printf Store
