lib/lfk/kernel.pp.mli: Ir
