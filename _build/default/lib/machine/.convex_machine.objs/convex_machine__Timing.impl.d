lib/machine/timing.pp.ml: Array Convex_isa Format Instr List Ppx_deriving_runtime
