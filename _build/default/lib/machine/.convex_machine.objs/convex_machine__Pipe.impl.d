lib/machine/pipe.pp.ml: Convex_isa Instr Option Ppx_deriving_runtime
