lib/machine/pipe.pp.mli: Convex_isa Format Instr
