lib/machine/machine.pp.mli: Format Mem_params Pipe Timing
