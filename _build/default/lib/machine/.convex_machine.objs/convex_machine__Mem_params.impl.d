lib/machine/mem_params.pp.ml: Ppx_deriving_runtime
