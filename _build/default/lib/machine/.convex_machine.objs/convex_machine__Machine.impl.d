lib/machine/machine.pp.ml: Format Mem_params Pipe Ppx_deriving_runtime String Timing
