lib/machine/mem_params.pp.mli: Format
