lib/machine/timing.pp.mli: Convex_isa Format Instr
