type t = {
  banks : int;
  word_bytes : int;
  bank_busy_cycles : int;
  refresh_period : int;
  refresh_duration : int;
  ports : int;
}
[@@deriving show, eq]

let c240 =
  {
    banks = 32;
    word_bytes = 8;
    bank_busy_cycles = 8;
    refresh_period = 400;
    refresh_duration = 8;
    ports = 5;
  }

let refresh_factor t =
  1.0 +. (float_of_int t.refresh_duration /. float_of_int t.refresh_period)

let no_refresh t = { t with refresh_period = max_int; refresh_duration = 0 }
