open Convex_isa

(** Vector-instruction timing parameters (paper Table 1, VL = 128).

    A single independent vector instruction takes [X + Y + Z * VL] cycles
    (eq. 5): [X] cycles of initial overhead, [Y] further cycles until the
    first element result is available, and [Z] additional cycles per
    element.  [B] is the empirically observed tailgate {e bubble} between
    successive instructions in a pipe (paper §3.3); a chime preceded by at
    least one chime takes [Z * VL + sum of B] cycles (eq. 13). *)

type params = { x : int; y : int; z : float; b : int }

val pp_params : Format.formatter -> params -> unit
val show_params : params -> string
val equal_params : params -> params -> bool

type table
(** Timing parameters for every vector instruction class. *)

val get : table -> Instr.vclass -> params

val make : (Instr.vclass -> params) -> table
(** Tabulate a function over all classes. *)

val map : (Instr.vclass -> params -> params) -> table -> table

val c240 : table
(** The Convex-specified and calibration-confirmed values of Table 1:
    loads X=2 Y=10 Z=1 B=2; stores X=2 Y=10 Z=1 B=4; add/sub/neg X=2 Y=10
    Z=1 B=1; multiply X=2 Y=12 Z=1 B=1; divide X=2 Y=72 Z=4 B=21;
    sum reduction X=2 Y=10 Z=1.35 B=0; square root assumed equal to
    divide (no published row; same iterative unit). *)

val zero_bubbles : table -> table
(** Ablation helper: the same table with every [B] forced to 0. *)

val equal : table -> table -> bool
val pp : Format.formatter -> table -> unit
