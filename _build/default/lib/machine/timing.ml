open Convex_isa

type params = { x : int; y : int; z : float; b : int } [@@deriving show, eq]

let class_index = function
  | Instr.Cld -> 0
  | Instr.Cst -> 1
  | Instr.Cadd -> 2
  | Instr.Csub -> 3
  | Instr.Cmul -> 4
  | Instr.Cdiv -> 5
  | Instr.Csqrt -> 6
  | Instr.Csum -> 7
  | Instr.Cneg -> 8
  | Instr.Ccmp -> 9
  | Instr.Cmerge -> 10

type table = params array

let get t c = t.(class_index c)

let make f =
  let t = Array.make (List.length Instr.all_vclasses) (f Instr.Cld) in
  List.iter (fun c -> t.(class_index c) <- f c) Instr.all_vclasses;
  t

let map f t = make (fun c -> f c (get t c))

let c240 =
  make (function
    | Instr.Cld -> { x = 2; y = 10; z = 1.0; b = 2 }
    | Instr.Cst -> { x = 2; y = 10; z = 1.0; b = 4 }
    | Instr.Cadd -> { x = 2; y = 10; z = 1.0; b = 1 }
    | Instr.Csub -> { x = 2; y = 10; z = 1.0; b = 1 }
    | Instr.Cmul -> { x = 2; y = 12; z = 1.0; b = 1 }
    | Instr.Cdiv -> { x = 2; y = 72; z = 4.0; b = 21 }
    (* the paper's Table 1 has no square-root row; it runs on the same
       iterative multiply-pipe unit as divide, so we assume the divide
       parameters (documented assumption) *)
    | Instr.Csqrt -> { x = 2; y = 72; z = 4.0; b = 21 }
    | Instr.Csum -> { x = 2; y = 10; z = 1.35; b = 0 }
    | Instr.Cneg -> { x = 2; y = 10; z = 1.0; b = 1 }
    (* comparisons run like adds; merges (vector edits) like multiplies:
       the paper's Table 1 lists neither, so the pipes' generic rates are
       assumed (documented) *)
    | Instr.Ccmp -> { x = 2; y = 10; z = 1.0; b = 1 }
    | Instr.Cmerge -> { x = 2; y = 12; z = 1.0; b = 1 })

let zero_bubbles t = map (fun _ p -> { p with b = 0 }) t
let equal t1 t2 = Array.for_all2 equal_params t1 t2

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun c ->
      Format.fprintf fmt "%a: %a@," Instr.pp_vclass c pp_params (get t c))
    Instr.all_vclasses;
  Format.fprintf fmt "@]"
