(** ASCII bar charts, used to reproduce the paper's Figure 3 (CPF per kernel
    for each level of the bounds hierarchy) in terminal output. *)

type series = { label : string; glyph : char; values : float array }
(** One bar series.  All series in a chart must have the same length. *)

val render :
  ?width:int ->
  ?value_fmt:(float -> string) ->
  categories:string list ->
  series list ->
  string
(** [render ~categories series] draws one horizontal bar per
    (category, series) pair, grouped by category, scaled so that the largest
    value spans [width] characters (default 50).  Each bar is annotated with
    its numeric value via [value_fmt] (default 3 decimals).

    Raises [Invalid_argument] if lengths disagree, the series list is empty,
    or any value is negative. *)

val render_sparkline : float array -> string
(** Compact one-line rendering with the classic eight-level block glyphs;
    used in calibration sweep summaries. *)
