type series = { label : string; glyph : char; values : float array }

let render ?(width = 50) ?(value_fmt = fun v -> Printf.sprintf "%.3f" v)
    ~categories series =
  if series = [] then invalid_arg "Chart.render: no series";
  let ncat = List.length categories in
  List.iter
    (fun s ->
      if Array.length s.values <> ncat then
        invalid_arg "Chart.render: series length mismatch";
      Array.iter
        (fun v -> if v < 0.0 then invalid_arg "Chart.render: negative value")
        s.values)
    series;
  let max_value =
    List.fold_left
      (fun acc s -> Array.fold_left Float.max acc s.values)
      0.0 series
  in
  let scale v =
    if max_value <= 0.0 then 0
    else int_of_float (Float.round (v /. max_value *. float_of_int width))
  in
  let label_width =
    List.fold_left (fun acc s -> max acc (String.length s.label)) 0 series
  in
  let cat_width =
    List.fold_left (fun acc c -> max acc (String.length c)) 0 categories
  in
  let buf = Buffer.create 1024 in
  List.iteri
    (fun i cat ->
      Buffer.add_string buf cat;
      Buffer.add_char buf '\n';
      List.iter
        (fun s ->
          let v = s.values.(i) in
          Buffer.add_string buf (String.make cat_width ' ');
          Buffer.add_string buf "  ";
          Buffer.add_string buf s.label;
          Buffer.add_string buf
            (String.make (label_width - String.length s.label) ' ');
          Buffer.add_string buf " |";
          Buffer.add_string buf (String.make (scale v) s.glyph);
          Buffer.add_char buf ' ';
          Buffer.add_string buf (value_fmt v);
          Buffer.add_char buf '\n')
        series)
    categories;
  (* legend *)
  Buffer.add_string buf "legend:";
  List.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf " [%c]=%s" s.glyph s.label))
    series;
  Buffer.contents buf

let spark_glyphs = [| " "; "_"; "."; ":"; "-"; "="; "+"; "#" |]

let render_sparkline values =
  if Array.length values = 0 then ""
  else
    let lo, hi = Stats.min_max values in
    let span = hi -. lo in
    let level v =
      if span <= 0.0 then 4
      else
        let r = (v -. lo) /. span *. 7.0 in
        int_of_float (Float.round r)
    in
    String.concat ""
      (Array.to_list (Array.map (fun v -> spark_glyphs.(level v)) values))
