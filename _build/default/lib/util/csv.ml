let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quoting s then
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  else s

let row cells = String.concat "," (List.map escape cells)

let render ~header rows =
  let lines = List.map row (header :: rows) in
  String.concat "\n" lines ^ "\n"

let write_file path ~header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ~header rows))
