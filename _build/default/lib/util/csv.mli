(** Minimal CSV emission (RFC-4180-style quoting) so benchmark results can be
    exported for external plotting. *)

val escape : string -> string
(** Quote a field if it contains a comma, quote, or newline. *)

val row : string list -> string
(** Render one row, no trailing newline. *)

val render : header:string list -> string list list -> string
(** Render header plus rows, rows separated by ['\n'], trailing newline. *)

val write_file : string -> header:string list -> string list list -> unit
(** [write_file path ~header rows] writes the CSV to [path]. *)
