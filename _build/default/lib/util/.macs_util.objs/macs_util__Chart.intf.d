lib/util/chart.mli:
