lib/util/table.mli:
