lib/util/csv.mli:
