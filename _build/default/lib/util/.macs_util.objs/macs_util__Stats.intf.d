lib/util/stats.mli:
