type align = Left | Right | Center

type row = Cells of string list | Separator

type t = {
  header : string list;
  aligns : align list;
  width : int;
  mutable rows : row list; (* reversed *)
}

let create ?aligns ~header () =
  let width = List.length header in
  let aligns =
    match aligns with
    | None -> List.init width (fun _ -> Right)
    | Some a ->
        if List.length a <> width then
          invalid_arg "Table.create: aligns length mismatch"
        else a
  in
  { header; aligns; width; rows = [] }

let add_row t cells =
  if List.length cells <> t.width then
    invalid_arg "Table.add_row: width mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let total = width - n in
    match align with
    | Left -> s ^ String.make total ' '
    | Right -> String.make total ' ' ^ s
    | Center ->
        let left = total / 2 in
        String.make left ' ' ^ s ^ String.make (total - left) ' '

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.header) in
  let note_widths cells =
    List.iteri
      (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
      cells
  in
  List.iter (function Cells cs -> note_widths cs | Separator -> ()) rows;
  let render_cells cells =
    let parts =
      List.mapi
        (fun i c ->
          let a = List.nth t.aligns i in
          pad a widths.(i) c)
        cells
    in
    String.concat " | " parts
  in
  let rule =
    String.concat "-+-"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let body =
    List.map (function Cells cs -> render_cells cs | Separator -> rule) rows
  in
  String.concat "\n" (render_cells t.header :: rule :: body)

let print t =
  print_string (render t);
  print_newline ()

let cell_float ?(decimals = 3) x = Printf.sprintf "%.*f" decimals x
let cell_int = string_of_int
let cell_pct x = Printf.sprintf "%.1f%%" (x *. 100.0)
let cell_opt f = function None -> "-" | Some v -> f v
