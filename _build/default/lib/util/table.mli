(** ASCII table rendering for the report generators.

    A table is a header row plus data rows of equal width.  Cells are plain
    strings; alignment is per column.  The renderer pads with spaces and
    draws a separator under the header, matching the look used throughout
    EXPERIMENTS.md and the bench output. *)

type align = Left | Right | Center

type t

val create : ?aligns:align list -> header:string list -> unit -> t
(** [create ~header ()] starts a table.  [aligns] defaults to [Right] for
    every column.  Raises [Invalid_argument] if [aligns] is given with a
    length different from [header]. *)

val add_row : t -> string list -> unit
(** Append a data row.  Raises [Invalid_argument] on width mismatch. *)

val add_separator : t -> unit
(** Append a horizontal rule (used before summary rows such as AVG). *)

val render : t -> string
(** Render to a string, one line per row, no trailing newline. *)

val print : t -> unit
(** [render] then print to stdout with a trailing newline. *)

(** {1 Cell formatting helpers} *)

val cell_float : ?decimals:int -> float -> string
(** Fixed-point rendering, default 3 decimals (the paper's precision). *)

val cell_int : int -> string

val cell_pct : float -> string
(** [cell_pct 0.704] is ["70.4%"]. *)

val cell_opt : ('a -> string) -> 'a option -> string
(** [None] renders as ["-"], matching the paper's "no change" dashes. *)
