open Convex_isa

(** Assignment of symbolic arrays to word addresses.

    The simulator needs concrete addresses to model bank conflicts, so each
    array named by a program is placed at a base word address.  Bases are
    assigned sequentially with configurable padding; with the default
    padding of one word, distinct unit-stride arrays start in different
    banks, which is the benign layout the paper assumes ("most memory
    accesses are unit stride"). *)

type t

val build : ?base:int -> ?pad:int -> (string * int) list -> t
(** [build arrays] places each [(name, size_words)] in order.  [base]
    defaults to 0, [pad] (words inserted between arrays) to 1.  Raises
    [Invalid_argument] on duplicate names or nonpositive sizes. *)

val of_program : ?size_words:int -> Program.t -> t
(** Place every array referenced by the program, each [size_words] words
    (default 4096 — room for the longest standard Livermore loop with
    offsets). *)

val alias : t -> existing:string -> string -> unit
(** [alias t ~existing name] makes [name] address the same storage as
    [existing] (same base, same size).  Raises [Not_found] if [existing]
    is unknown, [Invalid_argument] if [name] is already placed. *)

val base_of : t -> string -> int
(** Raises [Not_found] for an unknown array. *)

val size_of : t -> string -> int
val arrays : t -> string list

val word_of : t -> Instr.mem -> base_index:int -> element:int -> int
(** Word address of element [element] of a strip whose first iteration has
    loop index [base_index]: [base + offset + (base_index + element) *
    stride]. *)

val scalar_word_of : t -> Instr.mem -> base_index:int -> int
(** Address of a scalar access: [word_of] with [element = 0]. *)
