lib/memsys/contention.pp.mli: Format
