lib/memsys/layout.pp.mli: Convex_isa Instr Program
