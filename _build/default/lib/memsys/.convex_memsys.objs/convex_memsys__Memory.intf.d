lib/memsys/memory.pp.mli: Contention Convex_machine Mem_params
