lib/memsys/memory.pp.ml: Array Contention Convex_machine Hashtbl Mem_params
