lib/memsys/contention.pp.ml: Float Format Int64
