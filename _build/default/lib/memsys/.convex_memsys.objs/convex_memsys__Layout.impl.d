lib/memsys/layout.pp.ml: Convex_isa Hashtbl Instr List Printf Program
