open Convex_isa

type t = { table : (string, int * int) Hashtbl.t; order : string list }

let build ?(base = 0) ?(pad = 1) arrays =
  let table = Hashtbl.create 16 in
  let next = ref base in
  let order =
    List.map
      (fun (name, size) ->
        if size <= 0 then
          invalid_arg (Printf.sprintf "Layout.build: size of %s <= 0" name);
        if Hashtbl.mem table name then
          invalid_arg (Printf.sprintf "Layout.build: duplicate array %s" name);
        Hashtbl.add table name (!next, size);
        next := !next + size + pad;
        name)
      arrays
  in
  { table; order }

let of_program ?(size_words = 4096) p =
  build (List.map (fun a -> (a, size_words)) (Program.arrays p))

let alias t ~existing name =
  match Hashtbl.find_opt t.table existing with
  | None -> raise Not_found
  | Some entry ->
      if Hashtbl.mem t.table name then
        invalid_arg (Printf.sprintf "Layout.alias: %s already placed" name);
      Hashtbl.add t.table name entry

let lookup t name =
  match Hashtbl.find_opt t.table name with
  | Some entry -> entry
  | None -> raise Not_found

let base_of t name = fst (lookup t name)
let size_of t name = snd (lookup t name)
let arrays t = t.order

let word_of t (m : Instr.mem) ~base_index ~element =
  base_of t m.array + m.offset + ((base_index + element) * m.stride)

let scalar_word_of t m ~base_index = word_of t m ~base_index ~element:0
