(** Vectorization legality analysis.

    The Convex compiler vectorizes an inner loop only when no
    loop-carried flow dependence runs through its arrays: a statement that
    stores element [k] and (in the same or a later iteration) loads
    element [k - d] with [d > 0] must execute serially (LFK5's tridiagonal
    elimination, LFK11's prefix sum — the two kernels of the paper's
    benchmark range that do {e not} appear in its vectorized case study).

    The check compares every store stream against every load stream of
    the same storage (alias declarations are resolved): a carried flow
    dependence exists when both have the same scale and the store offset
    exceeds the load offset by a multiple of the scale.  Anti-dependences
    (load offset ahead of the store) are harmless: vector semantics
    performs all strip loads before the store instruction issues, which
    matches sequential order.  Streams of different scales under an alias
    come from the kernel's outer-pass structure (LFK2) and are taken as
    independent — the alias declaration asserts it.

    Reductions are not dependences; the compiler has a dedicated lowering
    for them. *)

type verdict =
  | Vectorizable
  | Carried_dependence of { store : Lfk.Ir.ref_; load : Lfk.Ir.ref_ }

val analyze : Lfk.Kernel.t -> verdict

val vectorizable : Lfk.Kernel.t -> bool

val pp_verdict : Format.formatter -> verdict -> unit
