(** Compiler optimization levels.

    [v61] mimics the Convex `fc` V6.1 behaviour the paper measures: every
    distinct array reference is loaded each iteration (values reused at a
    shifted index across iterations are reloaded, the cause of the MA→MAC
    gap in LFK 1, 2, 7, 12), and instructions are emitted depth-first so
    loads chain into their consumers.

    [ideal] keeps each reuse stream in a single register — one load per
    stream per iteration, approximating the MA workload.  Its output is
    {e not} functionally faithful (the C-240 has no vector-shift rotation
    to realign streams) and is meant only for timing ablations.

    [loads_first] keeps V6.1 reuse but hoists each statement's loads ahead
    of its arithmetic, degrading chime packing — the scheduling ablation.

    [packed] keeps V6.1 reuse but re-schedules the lowered body with a
    chime-aware list scheduler (see {!Schedule}), improving on the
    depth-first order where long statements burst same-pipe instructions
    (LFK8) — the scheduling ablation in the other direction. *)

type reuse = Reload_shifted | Stream_reuse
type schedule = Depth_first | Loads_first | Packed

type t = { reuse : reuse; schedule : schedule }

val v61 : t
val ideal : t
val loads_first : t
val packed : t

val functional : t -> bool
(** Whether compiled output computes the kernel's real results
    ([Stream_reuse] does not). *)

val name : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
