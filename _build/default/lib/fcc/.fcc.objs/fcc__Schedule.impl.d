lib/fcc/schedule.pp.ml: Array Convex_isa Convex_machine Fun Hashtbl Instr List Machine Option Pipe Reg
