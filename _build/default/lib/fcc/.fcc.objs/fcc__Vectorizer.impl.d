lib/fcc/vectorizer.pp.ml: Format Lfk List Option
