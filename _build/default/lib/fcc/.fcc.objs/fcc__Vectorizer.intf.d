lib/fcc/vectorizer.pp.mli: Format Lfk
