lib/fcc/compiler.pp.mli: Convex_isa Convex_vpsim Job Lfk Opt_level Program Store Vectorizer
