lib/fcc/opt_level.pp.ml: Ppx_deriving_runtime
