lib/fcc/opt_level.pp.mli: Format
