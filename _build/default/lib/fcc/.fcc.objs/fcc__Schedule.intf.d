lib/fcc/schedule.pp.mli: Convex_isa Convex_machine Instr Machine
