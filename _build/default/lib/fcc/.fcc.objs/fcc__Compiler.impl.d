lib/fcc/compiler.pp.ml: Array Asm Convex_isa Convex_machine Convex_vpsim Fun Hashtbl Instr Interp Job Lfk List Opt_level Option Printf Program Reg Schedule Store String Vectorizer
