type reuse = Reload_shifted | Stream_reuse [@@deriving show, eq]
type schedule = Depth_first | Loads_first | Packed [@@deriving show, eq]
type t = { reuse : reuse; schedule : schedule } [@@deriving show, eq]

let v61 = { reuse = Reload_shifted; schedule = Depth_first }
let ideal = { reuse = Stream_reuse; schedule = Depth_first }
let loads_first = { reuse = Reload_shifted; schedule = Loads_first }
let packed = { reuse = Reload_shifted; schedule = Packed }
let functional t = t.reuse = Reload_shifted

let name t =
  match (t.reuse, t.schedule) with
  | Reload_shifted, Depth_first -> "v61"
  | Stream_reuse, Depth_first -> "ideal"
  | Reload_shifted, Loads_first -> "loads-first"
  | Stream_reuse, Loads_first -> "ideal-loads-first"
  | Reload_shifted, Packed -> "packed"
  | Stream_reuse, Packed -> "ideal-packed"
