module Ir = Lfk.Ir

type verdict =
  | Vectorizable
  | Carried_dependence of { store : Ir.ref_; load : Ir.ref_ }

let canonical_array (k : Lfk.Kernel.t) name =
  match List.assoc_opt name k.aliases with Some target -> target | None -> name

(* A flow dependence from iteration k to iteration k + d/scale is real
   only if that later iteration exists: distances at or beyond the longest
   segment (LFK10's 101-word column spacing over a 101-trip loop) never
   materialize. *)
let max_trip (k : Lfk.Kernel.t) =
  List.fold_left (fun acc s -> max acc s.Lfk.Kernel.length) 0 k.segments

let carried (k : Lfk.Kernel.t) (store : Ir.ref_) (load : Ir.ref_) =
  canonical_array k store.array = canonical_array k load.array
  && store.scale = load.scale
  && store.scale <> 0
  &&
  let d = store.offset - load.offset in
  d > 0 && d mod store.scale = 0 && d / abs store.scale < max_trip k

let analyze (k : Lfk.Kernel.t) =
  let stores = Ir.store_refs k.body in
  let loads = Ir.load_refs k.body in
  let conflict =
    List.find_map
      (fun store ->
        Option.map
          (fun load -> (store, load))
          (List.find_opt (fun load -> carried k store load) loads))
      stores
  in
  match conflict with
  | None -> Vectorizable
  | Some (store, load) -> Carried_dependence { store; load }

let vectorizable k = analyze k = Vectorizable

let pp_verdict fmt = function
  | Vectorizable -> Format.fprintf fmt "vectorizable"
  | Carried_dependence { store; load } ->
      Format.fprintf fmt
        "loop-carried flow dependence: store %a feeds load %a" Ir.pp_ref_
        store Ir.pp_ref_ load
