test/test_extensions.ml: Alcotest Array Convex_isa Convex_machine Convex_memsys Convex_vpsim Cosim Fcc Float Interp Job Lfk List Machine Macs Macs_report Measure Parallel Printf Sim Store String
