test/test_report.ml: Alcotest Array Convex_memsys Convex_vpsim Float Lazy Lfk List Macs Macs_report Printf String
