test/test_fcc.ml: Alcotest Array Asm Convex_isa Convex_vpsim Data Fcc Float Hashtbl Instr Ir Kernel Kernels Lfk List Printf Program QCheck QCheck_alcotest Reference Reg Test_gen
