test/test_machine.ml: Alcotest Convex_isa Convex_machine Format Instr List Machine Mem_params Pipe Reg String Timing
