test/test_memsys.ml: Alcotest Contention Convex_isa Convex_machine Convex_memsys Gen Layout List Mem_params Memory Printf QCheck QCheck_alcotest
