test/test_tools.ml: Alcotest Array Convex_isa Convex_machine Convex_vpsim Fcc Filename Float Instr Lazy Lfk List Machine Macs Macs_report Printf Program Reg String Sys
