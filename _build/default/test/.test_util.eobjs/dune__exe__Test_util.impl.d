test/test_util.ml: Alcotest Array Buffer Chart Csv Filename Float Gen List Macs_util QCheck QCheck_alcotest Stats String Sys Table
