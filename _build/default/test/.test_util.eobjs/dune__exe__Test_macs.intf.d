test/test_macs.mli:
