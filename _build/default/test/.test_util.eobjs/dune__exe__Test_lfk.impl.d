test/test_lfk.ml: Alcotest Array Convex_vpsim Data Ir Kernel Kernels Lfk List Printf QCheck QCheck_alcotest Reference Test_gen
