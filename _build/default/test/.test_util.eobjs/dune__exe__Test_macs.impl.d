test/test_macs.ml: Alcotest Convex_isa Convex_machine Convex_vpsim Fcc Format Instr Lfk List Machine Macs Pipe Printf Program QCheck QCheck_alcotest Reg String Test_gen
