test/test_fcc.mli:
