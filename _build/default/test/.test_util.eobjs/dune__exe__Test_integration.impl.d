test/test_integration.ml: Alcotest Convex_machine Convex_memsys Convex_vpsim Counts Fcc Float Hierarchy Lazy Lfk List Macs Macs_bound Macs_report Printf Units
