test/test_vpsim.mli:
