test/test_vpsim.ml: Alcotest Array Calibrate Convex_isa Convex_machine Convex_vpsim Float Instr Interp Job List Machine Measure Printf Program QCheck QCheck_alcotest Reg Sim Store Test_gen Timing
