test/test_isa.ml: Alcotest Asm Convex_isa Instr List Printf Program QCheck QCheck_alcotest Reg Test_gen
