test/test_lfk.mli:
