(* Shared QCheck generators for the test suites. *)

open Convex_isa

let vreg_gen = QCheck.Gen.map Reg.v (QCheck.Gen.int_range 0 7)
let sreg_gen = QCheck.Gen.map Reg.s (QCheck.Gen.int_range 0 7)

let mem_gen : Instr.mem QCheck.Gen.t =
  let open QCheck.Gen in
  let* array = oneofl [ "A"; "B"; "C" ] in
  let* offset = int_range 0 16 in
  let* stride = oneofl [ 1; 1; 1; 2; 5 ] in
  return { Instr.array; offset; stride }

let vsrc_gen =
  let open QCheck.Gen in
  oneof
    [
      map (fun r -> Instr.Vr r) vreg_gen;
      map (fun r -> Instr.Sr r) sreg_gen;
    ]

let vbinop_gen =
  (* divides are rare, as in real code, to keep simulated times small *)
  QCheck.Gen.frequency
    [
      (4, QCheck.Gen.return Instr.Add);
      (3, QCheck.Gen.return Instr.Sub);
      (4, QCheck.Gen.return Instr.Mul);
      (1, QCheck.Gen.return Instr.Div);
    ]

let vector_instr_gen : Instr.t QCheck.Gen.t =
  let open QCheck.Gen in
  frequency
    [
      (3, map2 (fun dst src -> Instr.Vld { dst; src }) vreg_gen mem_gen);
      (2, map2 (fun src dst -> Instr.Vst { src; dst }) vreg_gen mem_gen);
      ( 5,
        let* op = vbinop_gen in
        let* dst = vreg_gen in
        let* src1 = vsrc_gen in
        let* src2 = vsrc_gen in
        return (Instr.Vbin { op; dst; src1; src2 }) );
      (1, map2 (fun dst src -> Instr.Vneg { dst; src }) vreg_gen vreg_gen);
      (1, map2 (fun dst src -> Instr.Vsqrt { dst; src }) vreg_gen vreg_gen);
      ( 1,
        let* dst = vreg_gen in
        let* base = mem_gen in
        let* index = vreg_gen in
        return (Instr.Vgather { dst; base; index }) );
      ( 1,
        let* src = vreg_gen in
        let* base = mem_gen in
        let* index = vreg_gen in
        return (Instr.Vscatter { src; base; index }) );
      ( 1,
        let* op = oneofl [ Instr.Lt; Instr.Le; Instr.Eq; Instr.Ne ] in
        let* src1 = vreg_gen in
        let* src2 = vsrc_gen in
        return (Instr.Vcmp { op; src1; src2 }) );
      ( 1,
        let* dst = vreg_gen in
        let* src_true = vsrc_gen in
        let* src_false = vsrc_gen in
        return (Instr.Vmerge { dst; src_true; src_false }) );
      (1, map2 (fun dst src -> Instr.Vsum { dst; src }) sreg_gen vreg_gen);
    ]

let scalar_instr_gen : Instr.t QCheck.Gen.t =
  let open QCheck.Gen in
  frequency
    [
      (2, map2 (fun dst src -> Instr.Sld { dst; src }) sreg_gen mem_gen);
      (1, map2 (fun src dst -> Instr.Sst { src; dst }) sreg_gen mem_gen);
      ( 2,
        let* op = vbinop_gen in
        let* dst = sreg_gen in
        let* src1 = sreg_gen in
        let* src2 = sreg_gen in
        return (Instr.Sbin { op; dst; src1; src2 }) );
      (2, map (fun name -> Instr.Sop { name }) (oneofl [ "add.a"; "lt.s" ]));
      (1, return Instr.Smovvl);
      (1, return Instr.Sbranch);
    ]

let instr_gen =
  QCheck.Gen.frequency [ (4, vector_instr_gen); (1, scalar_instr_gen) ]

let body_gen =
  QCheck.Gen.(list_size (int_range 1 14) instr_gen)

let vector_body_gen =
  QCheck.Gen.(list_size (int_range 1 12) vector_instr_gen)

let instr_arbitrary = QCheck.make ~print:Instr.show instr_gen

let body_arbitrary =
  QCheck.make
    ~print:(fun is -> String.concat "\n" (List.map Instr.show is))
    body_gen

let vector_body_arbitrary =
  QCheck.make
    ~print:(fun is -> String.concat "\n" (List.map Instr.show is))
    vector_body_gen

(* ---- random loop-IR kernels for compiler round trips ---- *)

let expr_gen ~depth : Lfk.Ir.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let ref_gen =
    let* array = oneofl [ "P"; "Q"; "R" ] in
    let* offset = int_range 0 4 in
    return { Lfk.Ir.array; scale = 1; offset }
  in
  let leaf =
    frequency
      [
        (4, map (fun r -> Lfk.Ir.Load r) ref_gen);
        (1, map (fun s -> Lfk.Ir.Scalar s) (oneofl [ "c1"; "c2" ]));
      ]
  in
  fix
    (fun self depth ->
      if depth <= 0 then leaf
      else
        frequency
          [
            (2, leaf);
            ( 3,
              let* a = self (depth - 1) in
              let* b = self (depth - 1) in
              oneofl
                [ Lfk.Ir.Add (a, b); Lfk.Ir.Sub (a, b); Lfk.Ir.Mul (a, b) ]
            );
          ])
    depth

let rec has_load = function
  | Lfk.Ir.Load _ -> true
  | Lfk.Ir.Scalar _ | Lfk.Ir.Temp _ -> false
  | Lfk.Ir.Add (a, b) | Lfk.Ir.Sub (a, b) | Lfk.Ir.Mul (a, b)
  | Lfk.Ir.Div (a, b) ->
      has_load a || has_load b
  | Lfk.Ir.Neg a | Lfk.Ir.Sqrt a -> has_load a
  | Lfk.Ir.Gather { index; _ } -> has_load index
  | Lfk.Ir.Select { a; b; if_true; if_false; _ } ->
      has_load a || has_load b || has_load if_true || has_load if_false

let kernel_gen : Lfk.Kernel.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* e0 = expr_gen ~depth:3 in
  (* the compiler stores vector values; anchor scalar-only expressions on
     a load so the store is vector-valued *)
  let e =
    if has_load e0 then e0
    else Lfk.Ir.Mul (e0, Lfk.Ir.Load { array = "P"; scale = 1; offset = 0 })
  in
  let* n = int_range 5 300 in
  return
    {
      Lfk.Kernel.id = 999;
      name = "random";
      description = "generated";
      fortran = "";
      body = [ Lfk.Ir.Store ({ array = "OUT"; scale = 1; offset = 0 }, e) ];
      acc = None;
      scalars = [ ("c1", 0.5); ("c2", 0.25) ];
      arrays = [ ("P", 512); ("Q", 512); ("R", 512); ("OUT", 512) ];
      aliases = [];
      segments = [ { base = 0; length = n; shifts = [] } ];
      outer_ops = 0;
    }

let kernel_arbitrary =
  QCheck.make
    ~print:(fun (k : Lfk.Kernel.t) ->
      String.concat "\n" (List.map Lfk.Ir.show_stmt k.body))
    kernel_gen
