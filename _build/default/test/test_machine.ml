(* Tests for convex_machine: pipe mapping, the Table 1 timing values,
   memory parameters, and the machine presets. *)

open Convex_isa
open Convex_machine

(* ---- Pipe ---- *)

let test_pipe_mapping () =
  let check cls pipe =
    Alcotest.(check string)
      (Instr.show_vclass cls) (Pipe.name pipe)
      (Pipe.name (Pipe.of_vclass cls))
  in
  check Instr.Cld Pipe.Load_store;
  check Instr.Cst Pipe.Load_store;
  check Instr.Cadd Pipe.Add_unit;
  check Instr.Csub Pipe.Add_unit;
  check Instr.Csum Pipe.Add_unit;
  check Instr.Cneg Pipe.Add_unit;
  check Instr.Cmul Pipe.Multiply_unit;
  check Instr.Cdiv Pipe.Multiply_unit;
  check Instr.Csqrt Pipe.Multiply_unit

let test_pipe_of_instr () =
  let ld = Instr.Vld { dst = Reg.v 0; src = { array = "A"; offset = 0; stride = 1 } } in
  Alcotest.(check bool) "ld lsu" true (Pipe.of_instr ld = Some Pipe.Load_store);
  Alcotest.(check bool) "scalar none" true (Pipe.of_instr Instr.Smovvl = None)

let test_pipe_indices () =
  Alcotest.(check (list int)) "indices" [ 0; 1; 2 ]
    (List.map Pipe.index Pipe.all);
  Alcotest.(check int) "count" 3 Pipe.count

(* ---- Timing: the paper's Table 1 ---- *)

let test_table1_values () =
  let check cls (x, y, z, b) =
    let p = Timing.get Timing.c240 cls in
    Alcotest.(check int) (Instr.show_vclass cls ^ " X") x p.Timing.x;
    Alcotest.(check int) (Instr.show_vclass cls ^ " Y") y p.y;
    Alcotest.(check (float 1e-9)) (Instr.show_vclass cls ^ " Z") z p.z;
    Alcotest.(check int) (Instr.show_vclass cls ^ " B") b p.b
  in
  check Instr.Cld (2, 10, 1.0, 2);
  check Instr.Cst (2, 10, 1.0, 4);
  check Instr.Cadd (2, 10, 1.0, 1);
  check Instr.Csub (2, 10, 1.0, 1);
  check Instr.Cmul (2, 12, 1.0, 1);
  check Instr.Cdiv (2, 72, 4.0, 21);
  (* square root assumed equal to divide: same iterative unit *)
  check Instr.Csqrt (2, 72, 4.0, 21);
  check Instr.Csum (2, 10, 1.35, 0);
  check Instr.Cneg (2, 10, 1.0, 1)

let test_zero_bubbles () =
  let t = Timing.zero_bubbles Timing.c240 in
  List.iter
    (fun cls ->
      Alcotest.(check int) "B=0" 0 (Timing.get t cls).Timing.b;
      (* everything else untouched *)
      Alcotest.(check int) "Y same" (Timing.get Timing.c240 cls).Timing.y
        (Timing.get t cls).Timing.y)
    Instr.all_vclasses

let test_timing_map_make () =
  let t = Timing.make (fun _ -> { Timing.x = 1; y = 2; z = 3.0; b = 4 }) in
  Alcotest.(check int) "tabulated" 4 (Timing.get t Instr.Cdiv).Timing.b;
  let t2 = Timing.map (fun _ p -> { p with Timing.x = 9 }) t in
  Alcotest.(check int) "mapped" 9 (Timing.get t2 Instr.Cld).Timing.x;
  Alcotest.(check bool) "equal reflexive" true (Timing.equal t t)

(* ---- Mem_params ---- *)

let test_mem_params () =
  let m = Mem_params.c240 in
  Alcotest.(check int) "banks" 32 m.Mem_params.banks;
  Alcotest.(check int) "word" 8 m.word_bytes;
  Alcotest.(check int) "bank busy" 8 m.bank_busy_cycles;
  Alcotest.(check int) "refresh period" 400 m.refresh_period;
  Alcotest.(check int) "refresh duration" 8 m.refresh_duration;
  Alcotest.(check (float 1e-9)) "refresh factor 1.02" 1.02
    (Mem_params.refresh_factor m)

let test_no_refresh () =
  let m = Mem_params.no_refresh Mem_params.c240 in
  Alcotest.(check (float 1e-9)) "factor 1.0" 1.0 (Mem_params.refresh_factor m)

(* ---- Machine ---- *)

let test_c240 () =
  let m = Machine.c240 in
  Alcotest.(check (float 1e-9)) "25 MHz" 25.0 m.Machine.clock_mhz;
  Alcotest.(check (float 1e-9)) "40 ns" 40.0 (Machine.clock_period_ns m);
  Alcotest.(check int) "VL 128" 128 m.max_vl;
  Alcotest.(check int) "pair reads" 2 m.pair_read_limit;
  Alcotest.(check int) "pair writes" 1 m.pair_write_limit;
  Alcotest.(check int) "one lsu" 1 (Machine.pipe_count m Pipe.Load_store)

let test_mflops () =
  (* eq. 4 at the paper's average CPF of 1.080 gives 23.15 MFLOPS *)
  Alcotest.(check (float 0.01)) "eq 4" 23.15
    (Machine.mflops_of_cpf Machine.c240 1.080)

let test_variants () =
  let dual = Machine.dual_load_store Machine.c240 in
  Alcotest.(check int) "dual lsu" 2 (Machine.pipe_count dual Pipe.Load_store);
  Alcotest.(check int) "adds still 1" 1 (Machine.pipe_count dual Pipe.Add_unit);
  let nb = Machine.no_bubbles Machine.c240 in
  Alcotest.(check int) "no bubbles" 0
    (Timing.get nb.Machine.timing Instr.Cst).Timing.b;
  let nr = Machine.no_refresh Machine.c240 in
  Alcotest.(check (float 1e-9)) "no refresh" 1.0
    (Mem_params.refresh_factor nr.Machine.memory)

let test_ideal () =
  let m = Machine.ideal in
  Alcotest.(check (float 1e-9)) "div z=1" 1.0
    (Timing.get m.Machine.timing Instr.Cdiv).Timing.z;
  Alcotest.(check int) "div b=0" 0
    (Timing.get m.Machine.timing Instr.Cdiv).Timing.b

let test_pp_smoke () =
  (* the pretty-printers render without raising and mention key facts *)
  let s = Format.asprintf "%a" Machine.pp Machine.c240 in
  Alcotest.(check bool) "mentions name" true
    (String.length s > 50);
  let t = Format.asprintf "%a" Timing.pp Timing.c240 in
  Alcotest.(check bool) "mentions classes" true (String.length t > 50)

let test_machine_equal () =
  Alcotest.(check bool) "reflexive" true (Machine.equal Machine.c240 Machine.c240);
  Alcotest.(check bool) "variant differs" false
    (Machine.equal Machine.c240 (Machine.no_bubbles Machine.c240))

let () =
  Alcotest.run "convex_machine"
    [
      ( "pipe",
        [
          Alcotest.test_case "class mapping" `Quick test_pipe_mapping;
          Alcotest.test_case "of_instr" `Quick test_pipe_of_instr;
          Alcotest.test_case "indices" `Quick test_pipe_indices;
        ] );
      ( "timing",
        [
          Alcotest.test_case "Table 1 values" `Quick test_table1_values;
          Alcotest.test_case "zero bubbles" `Quick test_zero_bubbles;
          Alcotest.test_case "map/make" `Quick test_timing_map_make;
        ] );
      ( "mem_params",
        [
          Alcotest.test_case "C-240 parameters" `Quick test_mem_params;
          Alcotest.test_case "no refresh" `Quick test_no_refresh;
        ] );
      ( "machine",
        [
          Alcotest.test_case "c240" `Quick test_c240;
          Alcotest.test_case "mflops eq 4" `Quick test_mflops;
          Alcotest.test_case "variants" `Quick test_variants;
          Alcotest.test_case "ideal" `Quick test_ideal;
          Alcotest.test_case "equality" `Quick test_machine_equal;
          Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
        ] );
    ]
