(* Tests for macs_report: consistency of the embedded paper data, and that
   every table/figure renderer produces plausible output containing the
   values it claims. *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ---- Paper data consistency ---- *)

let test_paper_rows_complete () =
  Alcotest.(check (list int)) "ten kernels" [ 1; 2; 3; 4; 6; 7; 8; 9; 10; 12 ]
    (List.map (fun r -> r.Macs_report.Paper.id) Macs_report.Paper.rows)

let test_paper_cpf_cpl_consistent () =
  (* CPL = CPF * flops must hold within the paper's rounding *)
  List.iter
    (fun (r : Macs_report.Paper.kernel_row) ->
      let derived = r.t_macs_cpf *. float_of_int r.flops in
      Alcotest.(check bool)
        (Printf.sprintf "lfk%d t_MACS CPL %.2f vs derived %.2f" r.id
           r.t_macs_cpl derived)
        true
        (Float.abs (derived -. r.t_macs_cpl) <= 0.06 *. r.t_macs_cpl))
    Macs_report.Paper.rows

let test_paper_bounds_ordered () =
  List.iter
    (fun (r : Macs_report.Paper.kernel_row) ->
      Alcotest.(check bool) (Printf.sprintf "lfk%d ordering" r.id) true
        (r.t_ma_cpf <= r.t_mac_cpf +. 1e-9
        && r.t_mac_cpf <= r.t_macs_cpf +. 1e-9
        && r.t_macs_cpf <= r.t_p_cpf +. 1e-9))
    Macs_report.Paper.rows

let test_paper_lfk1_example () =
  Alcotest.(check (float 1e-9)) "chime sum" 527.0
    Macs_report.Paper.lfk1_chime_sum;
  Alcotest.(check (float 1e-9)) "527 * 1.02" (527.0 *. 1.02)
    Macs_report.Paper.lfk1_macs_cycles

let test_paper_row_lookup () =
  Alcotest.(check int) "lfk7 flops" 16 (Macs_report.Paper.row 7).flops;
  Alcotest.check_raises "lfk5" Not_found (fun () ->
      ignore (Macs_report.Paper.row 5))

let test_paper_f_bounds_below_total () =
  List.iter
    (fun (r : Macs_report.Paper.kernel_row) ->
      Alcotest.(check bool) (Printf.sprintf "lfk%d f,m <= MACS+eps" r.id) true
        (r.t_macs_f <= r.t_macs_cpl +. 0.01
        && r.t_macs_m <= r.t_macs_cpl +. 0.01))
    Macs_report.Paper.rows

(* ---- Dataset ---- *)

let ds = lazy (Macs_report.Dataset.compute ())

let test_dataset () =
  let d = Lazy.force ds in
  Alcotest.(check int) "ten rows" 10 (List.length d.rows);
  let h = Macs_report.Dataset.find d 7 in
  Alcotest.(check int) "lookup" 7 h.Macs.Hierarchy.kernel.id;
  let ma, mac, macs, p = Macs_report.Dataset.cpf_columns d in
  Alcotest.(check int) "columns" 10 (Array.length ma);
  Alcotest.(check bool) "ordering holds columnwise" true
    (Array.for_all2 ( >= ) mac ma
    && Array.for_all2 ( >= ) macs mac
    && Array.for_all2 (fun a b -> a +. 0.01 >= b) p macs)

(* ---- Table renderers ---- *)

let test_table1_contains_spec () =
  let t = Macs_report.Tables.table1 () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains ~needle t))
    [ "vector load"; "vector divide"; "1.35"; "21"; "fit" ]

let test_table2_dashes () =
  let t = Macs_report.Tables.table2 (Lazy.force ds) in
  (* kernels 9/10 have MAC = MA: the row must contain dashes *)
  Alcotest.(check bool) "has dashes" true (contains ~needle:"-" t)

let test_table3_renders () =
  let t = Macs_report.Tables.table3 (Lazy.force ds) in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains ~needle t))
    [ "t_MA"; "t_MACS"; "4.20" ]

let test_table4_renders () =
  let t = Macs_report.Tables.table4 (Lazy.force ds) in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains ~needle t))
    [ "AVG"; "MFLOPS"; "0.840"; "%" ]

let test_table5_renders () =
  let t = Macs_report.Tables.table5 (Lazy.force ds) in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains ~needle t))
    [ "t_x"; "t_a"; "n/a" (* the missing LFK10 row of the paper *) ]

let test_lfk1_example_renders () =
  let t = Macs_report.Tables.lfk1_example () in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains ~needle t))
    [ "527.0"; "537.54"; "chime 4" ]

let test_diagnosis_covers_all () =
  let t = Macs_report.Tables.diagnosis (Lazy.force ds) in
  List.iter
    (fun (k : Lfk.Kernel.t) ->
      Alcotest.(check bool) k.name true (contains ~needle:k.name t))
    Lfk.Kernels.all

let test_ablation_tables () =
  let t = Macs_report.Tables.ablation_compiler () in
  Alcotest.(check bool) "ideal column" true (contains ~needle:"ideal" t);
  let m = Macs_report.Tables.ablation_machine () in
  Alcotest.(check bool) "dual LSU column" true (contains ~needle:"dual LSU" m)

(* ---- Figures ---- *)

let test_figure2 () =
  let f = Macs_report.Figures.figure2 () in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains ~needle f))
    [ "162"; "132"; "load/store"; "multiply" ]

let test_figure3 () =
  let f = Macs_report.Figures.figure3 (Lazy.force ds) in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains ~needle f))
    [ "LFK1"; "LFK12"; "MA bound"; "measured multi"; "5.1" ]

let test_figure3_contention_slower () =
  (* the multi-process series must be slower than single-process for the
     memory-bound kernels; spot-check via datasets *)
  let single = Lazy.force ds in
  let multi =
    Macs_report.Dataset.compute
      ~contention:(Convex_memsys.Contention.of_load_average 5.1) ()
  in
  let _, _, _, p1 = Macs_report.Dataset.cpf_columns single in
  let _, _, _, pm = Macs_report.Dataset.cpf_columns multi in
  (* LFK10 (index 8) is heavily memory bound *)
  Alcotest.(check bool) "contention slows lfk10" true (pm.(8) > p1.(8));
  (* and no kernel gets faster under contention *)
  Array.iteri
    (fun i m1 ->
      Alcotest.(check bool)
        (Printf.sprintf "kernel %d not faster" i)
        true
        (pm.(i) +. 1e-9 >= m1 *. 0.999))
    p1

let test_dataset_deterministic () =
  (* no hidden global state: two computations agree exactly *)
  let a = Macs_report.Dataset.compute () in
  let b = Macs_report.Dataset.compute () in
  List.iter2
    (fun (x : Macs.Hierarchy.t) (y : Macs.Hierarchy.t) ->
      Alcotest.(check (float 0.0))
        (x.kernel.name ^ " t_p identical")
        x.t_p.Convex_vpsim.Measure.cpl y.t_p.Convex_vpsim.Measure.cpl;
      Alcotest.(check (float 0.0))
        (x.kernel.name ^ " MACS identical")
        x.t_macs.Macs.Macs_bound.cpl y.t_macs.Macs.Macs_bound.cpl)
    a.rows b.rows

let test_report_doc () =
  let sections = Macs_report.Report_doc.sections () in
  Alcotest.(check bool) "20+ sections" true (List.length sections >= 20);
  let md = Macs_report.Report_doc.to_markdown () in
  Alcotest.(check bool) "has headings" true (contains ~needle:"## Table 4" md);
  (* every fenced block is closed *)
  let fences = ref 0 in
  String.split_on_char '\n' md
  |> List.iter (fun l -> if l = "```" then incr fences);
  Alcotest.(check int) "even fences... counting opens+closes"
    (2 * List.length sections)
    !fences

let () =
  Alcotest.run "macs_report"
    [
      ( "paper-data",
        [
          Alcotest.test_case "rows complete" `Quick test_paper_rows_complete;
          Alcotest.test_case "CPF/CPL consistent" `Quick
            test_paper_cpf_cpl_consistent;
          Alcotest.test_case "bounds ordered" `Quick test_paper_bounds_ordered;
          Alcotest.test_case "lfk1 example" `Quick test_paper_lfk1_example;
          Alcotest.test_case "row lookup" `Quick test_paper_row_lookup;
          Alcotest.test_case "component bounds" `Quick
            test_paper_f_bounds_below_total;
        ] );
      ( "dataset",
        [
          Alcotest.test_case "compute" `Quick test_dataset;
          Alcotest.test_case "deterministic" `Quick
            test_dataset_deterministic;
        ] );
      ( "tables",
        [
          Alcotest.test_case "table1" `Quick test_table1_contains_spec;
          Alcotest.test_case "table2" `Quick test_table2_dashes;
          Alcotest.test_case "table3" `Quick test_table3_renders;
          Alcotest.test_case "table4" `Quick test_table4_renders;
          Alcotest.test_case "table5" `Quick test_table5_renders;
          Alcotest.test_case "lfk1 example" `Quick test_lfk1_example_renders;
          Alcotest.test_case "diagnosis" `Quick test_diagnosis_covers_all;
          Alcotest.test_case "ablations" `Quick test_ablation_tables;
        ] );
      ( "report-doc",
        [ Alcotest.test_case "markdown" `Quick test_report_doc ] );
      ( "figures",
        [
          Alcotest.test_case "figure2" `Quick test_figure2;
          Alcotest.test_case "figure3" `Quick test_figure3;
          Alcotest.test_case "contention slows" `Quick
            test_figure3_contention_slower;
        ] );
    ]
