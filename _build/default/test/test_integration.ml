(* Integration tests: the full pipeline (kernel -> compiler -> bounds ->
   simulator -> diagnosis) against the paper's published results, with the
   tolerances EXPERIMENTS.md documents. *)

open Macs

(* (id, paper t_MA, t_MAC, t_MACS, t_p) in CPF *)
let paper_table4 =
  [
    (1, 0.600, 0.800, 0.840, 0.852);
    (2, 1.250, 1.500, 1.566, 3.773);
    (3, 1.000, 1.000, 1.044, 1.128);
    (4, 1.000, 1.000, 1.226, 1.863);
    (6, 1.000, 1.000, 1.226, 2.632);
    (7, 0.500, 0.625, 0.656, 0.681);
    (8, 0.583, 0.583, 0.824, 0.858);
    (9, 0.647, 0.647, 0.679, 0.749);
    (10, 2.222, 2.222, 2.328, 2.442);
    (12, 2.000, 3.000, 3.132, 3.182);
  ]

let hierarchies =
  lazy (List.map (fun k -> (k.Lfk.Kernel.id, Hierarchy.analyze k)) Lfk.Kernels.all)

let get id = List.assoc id (Lazy.force hierarchies)

(* MA and MAC bounds are derived from exact integer counts: they must
   match the paper exactly for every kernel. *)
let test_ma_mac_exact () =
  List.iter
    (fun (id, ma, mac, _, _) ->
      let h = get id in
      Alcotest.(check (float 0.0005))
        (Printf.sprintf "lfk%d t_MA" id)
        ma (Hierarchy.t_ma_cpf h);
      Alcotest.(check (float 0.0005))
        (Printf.sprintf "lfk%d t_MAC" id)
        mac (Hierarchy.t_mac_cpf h))
    paper_table4

(* MACS matches the paper within 0.5% on the kernels without reduction
   special cases or packing slack; the documented divergences are LFK4/6
   (reduction handling the paper leaves unspecified) and LFK8/9 (chime
   packing details of the real compiler). *)
let test_macs_close () =
  List.iter
    (fun (id, _, _, macs, _) ->
      let h = get id in
      Alcotest.(check bool)
        (Printf.sprintf "lfk%d t_MACS %.3f vs paper %.3f" id
           (Hierarchy.t_macs_cpf h) macs)
        true
        (Float.abs (Hierarchy.t_macs_cpf h -. macs) /. macs < 0.005))
    (List.filter (fun (id, _, _, _, _) -> List.mem id [ 1; 2; 7; 10; 12 ])
       paper_table4)

let test_macs_divergences_bounded () =
  (* even the divergent kernels stay within 20% of the paper's bound *)
  List.iter
    (fun (id, _, _, macs, _) ->
      let h = get id in
      Alcotest.(check bool)
        (Printf.sprintf "lfk%d within 20%%" id)
        true
        (Float.abs (Hierarchy.t_macs_cpf h -. macs) /. macs < 0.20))
    paper_table4

(* Measured performance: the simulator substitutes for the machine, so
   absolute agreement varies; the structural claims must hold. *)
let test_measured_shape () =
  (* 1. every kernel measures at or above its MACS bound *)
  List.iter
    (fun (id, _, _, _, _) ->
      let h = get id in
      Alcotest.(check bool)
        (Printf.sprintf "lfk%d t_p >= t_MACS" id)
        true
        (h.t_p.Convex_vpsim.Measure.cpl
         >= h.t_macs.Macs_bound.cpl -. 0.01))
    paper_table4;
  (* 2. the well-modeled kernels sit within 10% of the bound, as in the
     paper (LFK 1, 7, 8, 10, 12 are >= 95% explained there) *)
  List.iter
    (fun id ->
      let h = get id in
      Alcotest.(check bool)
        (Printf.sprintf "lfk%d well modeled" id)
        true
        (Hierarchy.pct_macs h > 0.90))
    [ 1; 7; 8; 10; 12 ];
  (* 3. the loose kernels (short vectors, reductions, outer loops) show a
     substantial unmodeled gap, as in the paper (LFK 2, 4, 6 at 41-66%) *)
  List.iter
    (fun id ->
      let h = get id in
      Alcotest.(check bool)
        (Printf.sprintf "lfk%d loose" id)
        true
        (Hierarchy.pct_macs h < 0.85))
    [ 2; 4; 6 ]

let test_measured_within_factor_of_paper () =
  List.iter
    (fun (id, _, _, _, p) ->
      let h = get id in
      let ours = Hierarchy.t_p_cpf h in
      Alcotest.(check bool)
        (Printf.sprintf "lfk%d measured %.3f vs paper %.3f" id ours p)
        true
        (ours > 0.5 *. p && ours < 1.5 *. p))
    paper_table4

let test_mflops_ordering () =
  (* the hierarchy's harmonic-mean MFLOPS must descend: MA >= MAC >= MACS
     >= measured, like the paper's 23.15 / 20.19 / 17.79 / 13.16 *)
  let ds = Macs_report.Dataset.compute () in
  let ma, mac, macs, p = Macs_report.Dataset.cpf_columns ds in
  let mf xs = Units.hmean_mflops ~clock_mhz:25.0 ~cpf_values:xs in
  Alcotest.(check bool) "descending" true
    (mf ma >= mf mac && mf mac >= mf macs && mf macs >= mf p);
  Alcotest.(check (float 0.05)) "MA mflops 23.15" 23.15 (mf ma);
  Alcotest.(check (float 0.05)) "MAC mflops 20.19" 20.19 (mf mac)

(* A/X behaviour: memory-side and FP-side measurements track their bounds *)
let test_ax_tracks_bounds () =
  List.iter
    (fun (k : Lfk.Kernel.t) ->
      let h = get k.id in
      let a = h.t_a.Convex_vpsim.Measure.cpl in
      let x = h.t_x.Convex_vpsim.Measure.cpl in
      Alcotest.(check bool) (k.name ^ " t_a >= m-bound") true
        (a >= h.t_macs_m.Macs_bound.cpl -. 0.02);
      (* the reduced-list f-bound is approximate (the paper notes the
         component bounds do not compose exactly); the dynamic X-process
         can pipeline FP chimes across iterations slightly better than
         the static partition (LFK7: 6% better) *)
      Alcotest.(check bool) (k.name ^ " t_x >= 0.92 * f-bound") true
        (x >= 0.92 *. h.t_macs_f.Macs_bound.cpl))
    Lfk.Kernels.all

let test_lfk8_splitting_signature () =
  (* the paper's LFK8 signature: t_MACS far above both component bounds,
     yet explaining ~98% of measured time *)
  let h = get 8 in
  let macs = h.t_macs.Macs_bound.cpl in
  Alcotest.(check bool) "MACS >> f,m" true
    (macs > 1.2 *. h.t_macs_f.Macs_bound.cpl
    && macs > 1.2 *. h.t_macs_m.Macs_bound.cpl);
  Alcotest.(check bool) "explains measured" true (Hierarchy.pct_macs h > 0.95)

let test_lfk7_fp_imbalance () =
  (* (t^f - t_f) > 1 in LFK7: adds and multiplies do not overlap
     perfectly, creating a ninth FP chime *)
  let h = get 7 in
  Alcotest.(check bool) "ninth chime" true
    (h.t_macs_f.Macs_bound.cpl -. float_of_int (Counts.t_f h.mac) > 1.0)

(* compiler ablation: ideal reuse closes the MA->MAC gap *)
let test_ideal_closes_ma_gap () =
  List.iter
    (fun id ->
      let k = Lfk.Kernels.find id in
      let ideal = Hierarchy.analyze ~opt:Fcc.Opt_level.ideal k in
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "lfk%d ideal MAC = MA" id)
        ideal.t_ma ideal.t_mac)
    [ 1; 2; 7; 12 ]

let test_loads_first_never_better () =
  List.iter
    (fun (k : Lfk.Kernel.t) ->
      let v61 = get k.id in
      let lf = Hierarchy.analyze ~opt:Fcc.Opt_level.loads_first k in
      Alcotest.(check bool)
        (Printf.sprintf "lfk%d loads-first bound not better" k.id)
        true
        (lf.t_macs.Macs_bound.cpl
        >= v61.t_macs.Macs_bound.cpl -. 0.02))
    Lfk.Kernels.all

(* machine ablations *)
let test_no_bubbles_tightens () =
  let m = Convex_machine.Machine.no_bubbles Convex_machine.Machine.c240 in
  List.iter
    (fun (k : Lfk.Kernel.t) ->
      let base = get k.id in
      let nb = Hierarchy.analyze ~machine:m k in
      Alcotest.(check bool) (k.name ^ " B=0 bound <= base") true
        (nb.t_macs.Macs_bound.cpl
        <= base.t_macs.Macs_bound.cpl +. 1e-9))
    Lfk.Kernels.all

let test_no_refresh_removes_two_percent () =
  let m = Convex_machine.Machine.no_refresh Convex_machine.Machine.c240 in
  let base = get 1 in
  let nr = Hierarchy.analyze ~machine:m (Lfk.Kernels.find 1) in
  let ratio = base.t_macs.Macs_bound.cpl /. nr.t_macs.Macs_bound.cpl in
  Alcotest.(check (float 0.001)) "exactly 1.02" 1.02 ratio

let test_contention_degrades () =
  (* the paper's rule of thumb: different programs on all four CPUs cost
     roughly 20%; our load-5.1 model lands in the 5-45% band per kernel *)
  let c = Convex_memsys.Contention.of_load_average 5.1 in
  let slowdowns =
    List.map
      (fun (k : Lfk.Kernel.t) ->
        let base = get k.id in
        let multi = Hierarchy.analyze ~contention:c k in
        multi.t_p.Convex_vpsim.Measure.cpl
        /. base.t_p.Convex_vpsim.Measure.cpl)
      Lfk.Kernels.all
  in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "slowdown %.2f in band" r)
        true
        (r >= 0.999 && r < 1.6))
    slowdowns;
  let avg = List.fold_left ( +. ) 0.0 slowdowns /. 10.0 in
  Alcotest.(check bool)
    (Printf.sprintf "average %.2f in 1.05-1.45" avg)
    true
    (avg > 1.05 && avg < 1.45)

let () =
  Alcotest.run "integration"
    [
      ( "paper-comparison",
        [
          Alcotest.test_case "MA/MAC exact" `Quick test_ma_mac_exact;
          Alcotest.test_case "MACS close on clean kernels" `Quick
            test_macs_close;
          Alcotest.test_case "MACS divergences bounded" `Quick
            test_macs_divergences_bounded;
          Alcotest.test_case "measured shape" `Quick test_measured_shape;
          Alcotest.test_case "measured within 1.5x of paper" `Quick
            test_measured_within_factor_of_paper;
          Alcotest.test_case "MFLOPS ordering" `Quick test_mflops_ordering;
        ] );
      ( "structure",
        [
          Alcotest.test_case "A/X track bounds" `Quick test_ax_tracks_bounds;
          Alcotest.test_case "lfk8 splitting signature" `Quick
            test_lfk8_splitting_signature;
          Alcotest.test_case "lfk7 fp imbalance" `Quick test_lfk7_fp_imbalance;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "ideal closes MA gap" `Quick
            test_ideal_closes_ma_gap;
          Alcotest.test_case "loads-first not better" `Quick
            test_loads_first_never_better;
          Alcotest.test_case "B=0 tightens bound" `Quick
            test_no_bubbles_tightens;
          Alcotest.test_case "no refresh = /1.02" `Quick
            test_no_refresh_removes_two_percent;
          Alcotest.test_case "contention degrades" `Quick
            test_contention_degrades;
        ] );
    ]
