; smoke-test listing for `macs_cli bound`
sample:
  smovvl
  vld    v0, A[0:1]
  vmul   v1, v0, s0
  vadd   v2, v1, v3
  vst    B[0:1], v2
  sbr
